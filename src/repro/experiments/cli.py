"""Command-line harness regenerating every table and figure.

Usage::

    repro-experiments table1 table2 table3      # the paper's tables
    repro-experiments fig7a --scale 0.1         # one Figure 7 panel
    repro-experiments fig7 --jobs 8             # all four panels, parallel
    repro-experiments fig8a fig8b fig8c         # confsync costs
    repro-experiments fig9                      # create+instrument time
    repro-experiments all --scale 0.05          # everything
    repro-experiments fig7a --csv out.csv       # machine-readable dump
    repro-experiments fig7a --json              # JSON document on stdout
    repro-experiments sweep --apps smg98 --policies Full,None \\
        --cpus 1,4,16 --jobs 4                  # an ad-hoc grid

Workload ``--scale`` shrinks simulated workloads proportionally (the
paper-shape ratios are scale-invariant); ``--quick`` caps the largest
process counts for fast smoke runs.

Every figure's grid executes through :class:`repro.runner.SweepRunner`:
``--jobs N`` fans the (app x policy x CPUs) points over N worker
processes (0 = one per CPU), and results are memoized in a
content-addressed cache (``--cache-dir``, default
``~/.cache/repro/sweep`` or ``$REPRO_CACHE_DIR``; ``--no-cache``
disables it) so a re-run with the same configuration is served
entirely from disk.  ``--progress`` streams JSON-lines telemetry to
stderr; ``--timeout`` bounds each point's wall-clock time; ``--obs
FILE`` additionally collects :mod:`repro.obs` simulator metrics for
every computed point and writes one merged JSON document; ``--trace
DIR`` collects a :mod:`repro.obs.trace` causal trace per computed
point and writes one ``<label>.trace.json`` each; ``--obs-sample SEC``
samples the metrics registry every SEC simulated seconds into
per-metric time series that ride the obs document (figure outputs
stay bit-identical with or without any of these).  ``--obs`` and
``--trace`` accept ``-`` to stream to stdout.

The ``obs`` subcommand post-processes a ``--obs`` document:
``obs report FILE`` pretty-prints the metrics, sampled series and
per-probe overhead profile (``--csv``/``--prom`` export CSV and
Prometheus text exposition); ``obs serve FILE`` exposes the document
live on HTTP ``/metrics`` + ``/stats`` endpoints.  The
``overhead-timeline`` experiment plots instrumentation overhead
versus simulated time for the four ASCI apps under Full vs. Dynamic
(sampled in-process; not part of ``all``).

The ``trace`` subcommand runs a single (app, policy, CPUs) point with
tracing on and prints the critical-path / perturbation summary —
optionally exporting Chrome-trace JSON (``--chrome``, loadable in
Perfetto) and an SVG timeline (``--svg``).

Record-and-replay (:mod:`repro.replay`, see ``docs/replay.md``):
``--record DIR`` on the figure/sweep commands records every computed
point's *order log* — the sequence of nondeterminism-relevant
decisions — as one ``<label>.order`` file each (``chaos --record
FILE`` records its single point); figure outputs stay byte-identical
with or without recording.  ``--replay PATH`` (a ``.order`` file or a
directory of them) verifies matching points against their recordings,
reporting the first divergent decision instead of silently different
numbers.  The ``replay`` subcommand works from logs alone: ``replay
verify LOG`` re-runs and checks the point a log describes, and
``replay bisect`` delta-debugs a failing fault plan to a 1-minimal
interesting subset.

Where points run and where results live are pluggable through the
service layer (:mod:`repro.svc`, see ``docs/service.md``): ``--backend
serial | process[:N] | socket:HOST:PORT`` selects the executor (the
socket form turns the sweep into a server that ``repro-experiments
worker --connect HOST:PORT`` processes join and pull points from), and
``--cache-backend dir:PATH | memory | sqlite:PATH | http://HOST:PORT``
selects the result store (the HTTP form talks to a standalone
``repro-experiments serve-cache`` daemon with read-through,
write-behind and graceful degradation).  Every combination produces
byte-identical figures; the defaults are exactly the classic local
pool + directory cache.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Union

from ..apps import ALL_APPS, get_app
from ..cluster import MACHINES, get_machine
from ..dynprof import POLICIES
from ..faults import CANNED_PLANS, FaultPlan, canned_plan
from ..runner import SweepError, SweepPoint, SweepRunner, default_cache_dir
from .fig7 import FIG7_PANELS, fig7_shape_report, run_fig7
from .fig8 import IA32_PROC_COUNTS, IBM_PROC_COUNTS, run_fig8a, run_fig8b, run_fig8c
from .fig9 import run_fig9
from .results import FigureResult
from .tables import render_table1, render_table2, render_table3
from .tracevol import (
    render_compression,
    render_tracevol,
    run_tracevol,
    run_tracevol_compression,
)

__all__ = ["main", "run_experiment", "EXPERIMENTS", "ExperimentOutput"]

EXPERIMENTS = (
    "table1", "table2", "table3",
    "fig7a", "fig7b", "fig7c", "fig7d", "fig7",
    "fig8a", "fig8b", "fig8c", "fig8",
    "fig9",
    "tracevol",
    "tracevol-compress",
    "overhead-timeline",
    "all",
)

#: What one experiment id produces: rendered text blocks and/or
#: figure-likes (anything with render/to_csv/to_dict, e.g.
#: FigureResult or OverheadTimeline).
ExperimentOutput = Union[str, FigureResult]


def _quick_counts(counts, cap):
    return tuple(c for c in counts if c <= cap)


def run_experiment(
    name: str,
    scale: float,
    seed: int,
    quick: bool,
    runner: Optional[SweepRunner] = None,
    faults: Optional[FaultPlan] = None,
) -> List[ExperimentOutput]:
    """Run one experiment id; returns text blocks / FigureResults.

    ``runner`` (optional) carries the worker pool, result cache and
    telemetry every figure grid executes through; None runs serially
    without caching, exactly like a direct ``run_fig*`` call.
    ``faults`` (optional) arms a deterministic fault-injection plan on
    the experiments that run full simulations (fig7, fig9, tracevol);
    an empty plan is equivalent to None and changes nothing.
    """
    if faults is not None and faults.is_empty:
        faults = None
    out: List[ExperimentOutput] = []
    if name == "table1":
        out.append(render_table1())
    elif name == "table2":
        out.append(render_table2())
    elif name == "table3":
        out.append(render_table3())
    elif name in FIG7_PANELS:
        app = get_app(FIG7_PANELS[name])
        cpus = _quick_counts(app.cpu_counts, 16) if quick else None
        fig = run_fig7(app, cpu_counts=cpus, scale=scale, seed=seed,
                       runner=runner, faults=faults)
        out.append(fig)
        out.append("\n".join(fig7_shape_report(fig, app)) + "\n")
    elif name == "fig7":
        for panel in ("fig7a", "fig7b", "fig7c", "fig7d"):
            out.extend(run_experiment(panel, scale, seed, quick, runner,
                                      faults))
    elif name == "fig8a":
        counts = _quick_counts(IBM_PROC_COUNTS, 32) if quick else IBM_PROC_COUNTS
        out.append(run_fig8a(counts, seed=seed, runner=runner))
    elif name == "fig8b":
        counts = _quick_counts(IBM_PROC_COUNTS, 32) if quick else IBM_PROC_COUNTS
        out.append(run_fig8b(counts, seed=seed, runner=runner))
    elif name == "fig8c":
        counts = _quick_counts(IA32_PROC_COUNTS, 8) if quick else IA32_PROC_COUNTS
        out.append(run_fig8c(counts, seed=seed, runner=runner))
    elif name == "fig8":
        for panel in ("fig8a", "fig8b", "fig8c"):
            out.extend(run_experiment(panel, scale, seed, quick, runner))
    elif name == "fig9":
        cpus = (1, 2, 4, 8) if quick else None
        out.append(run_fig9(cpu_counts=cpus, seed=seed, runner=runner,
                            faults=faults))
    elif name == "tracevol":
        n = 4 if quick else 16
        out.append(render_tracevol(
            run_tracevol(n_cpus=n, scale=scale, seed=seed, runner=runner,
                         faults=faults)
        ))
    elif name == "tracevol-compress":
        # In-process only: the compactor needs the postmortem TraceFile
        # itself, which never travels through the cache/worker envelope.
        n = 2 if quick else 4
        out.append(render_compression(
            run_tracevol_compression(n_cpus=n, scale=scale, seed=seed)
        ))
    elif name == "overhead-timeline":
        # In-process and cache-bypassing, like tracevol-compress: a
        # cached point carries no sampled series (no simulation ran),
        # so every cell is executed fresh with the sampler on.
        from .overhead import run_overhead_timeline

        interval = None
        if runner is not None and runner.obs_sample:
            interval = runner.obs_sample
        out.append(run_overhead_timeline(
            n_cpus=4 if quick else 8, scale=scale, seed=seed,
            interval=interval,
        ))
    elif name == "all":
        for exp in ("table1", "table2", "table3", "fig7", "fig8", "fig9", "tracevol"):
            out.extend(run_experiment(exp, scale, seed, quick, runner,
                                      faults))
    else:
        raise SystemExit(f"unknown experiment {name!r}; known: {EXPERIMENTS}")
    return out


# -- runner plumbing ------------------------------------------------------------


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the sweep grids "
                             "(default 1 = in-process; 0 = one per CPU)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="content-addressed result cache location "
                             f"(default {default_cache_dir()})")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--timeout", type=float, default=None, metavar="SEC",
                        help="per-point wall-clock budget in seconds")
    parser.add_argument("--progress", action="store_true",
                        help="stream JSON-lines sweep telemetry to stderr")
    parser.add_argument("--obs", metavar="FILE", default=None,
                        help="collect simulator metrics (events, messages, "
                             "trace records, probe patches) per computed "
                             "point and write one merged JSON document to "
                             "FILE ('-' = stdout); figure outputs are "
                             "unaffected")
    parser.add_argument("--obs-sample", type=float, default=None,
                        metavar="SEC",
                        help="sample the metrics registry every SEC "
                             "simulated seconds into per-metric time "
                             "series (riding the --obs document and "
                             "runner.timeseries); figure outputs are "
                             "unaffected")
    parser.add_argument("--trace", metavar="DIR", default=None,
                        help="collect a causal trace per computed point and "
                             "write one <label>.trace.json each into DIR "
                             "('-' = JSON lines on stdout); figure outputs "
                             "are unaffected")
    parser.add_argument("--trace-detail", choices=("fine", "coarse"),
                        default="fine",
                        help="trace detail: 'fine' includes per-function "
                             "spans, 'coarse' subsystem events only")
    parser.add_argument("--trace-capacity", type=int, default=None,
                        metavar="N",
                        help="per-track trace ring-buffer bound in events "
                             "(default 65536; evictions are counted, not "
                             "silent)")
    parser.add_argument("--trace-compact", action="store_true",
                        help="fold repeated event subsequences when a trace "
                             "ring fills instead of dropping immediately "
                             "(repro.compact); figure outputs are "
                             "unaffected")
    parser.add_argument("--record", metavar="DIR", default=None,
                        help="record every computed point's nondeterminism "
                             "order log and write one <label>.order file "
                             "each into DIR (repro.replay; figure outputs "
                             "are unaffected)")
    parser.add_argument("--replay", metavar="PATH", default=None,
                        help="verify computed points against recorded order "
                             "logs (PATH: one .order file or a directory of "
                             "them, matched by point label); divergence "
                             "fails the point with a first-divergence "
                             "report")
    parser.add_argument("--backend", metavar="SPEC", default=None,
                        help="executor backend: serial, process[:N], or "
                             "socket:HOST:PORT (remote `worker` processes "
                             "pull points); default derives from --jobs")
    parser.add_argument("--cache-backend", metavar="SPEC", default=None,
                        help="cache backend: dir:PATH, memory, sqlite:PATH, "
                             "or http://HOST:PORT (a `serve-cache` daemon); "
                             "overrides --cache-dir")


def _load_replay_logs(path: str) -> dict:
    """Load recorded order logs from one ``.order`` file or a directory
    of them; returns a ``label -> base64 log`` mapping keyed by each
    log's recorded point label."""
    import base64 as _base64
    import os as _os

    from ..replay.orderlog import OrderLog

    if _os.path.isdir(path):
        files = [_os.path.join(path, entry)
                 for entry in sorted(_os.listdir(path))
                 if entry.endswith(".order")]
        if not files:
            raise SystemExit(
                f"repro-experiments: --replay {path}: no .order files")
    else:
        files = [path]
    logs: dict = {}
    for file in files:
        try:
            with open(file, "rb") as fh:
                data = fh.read()
            log = OrderLog.from_bytes(data)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro-experiments: --replay {file}: {exc}")
        label = (log.meta or {}).get("label")
        if not label:
            raise SystemExit(
                f"repro-experiments: --replay {file}: log metadata carries "
                "no point label")
        logs[label] = _base64.b64encode(data).decode("ascii")
    return logs


def _write_order_logs(
    args: argparse.Namespace, runner: SweepRunner, quiet: bool = False
) -> List[str]:
    """Write one ``<label>.order`` file per recorded point into
    ``--record DIR``; returns the paths written."""
    if not getattr(args, "record", None):
        return []
    import base64 as _base64
    import os as _os

    try:
        _os.makedirs(args.record, exist_ok=True)
    except OSError as exc:
        print(f"repro-experiments: cannot write order logs "
              f"{args.record}: {exc}", file=sys.stderr)
        raise SystemExit(1)
    paths: List[str] = []
    for label in sorted(runner.order_logs):
        path = _os.path.join(args.record, f"{_safe_label(label)}.order")
        try:
            with open(path, "wb") as fh:
                fh.write(_base64.b64decode(runner.order_logs[label]))
        except OSError as exc:
            print(f"repro-experiments: cannot write order log {path}: {exc}",
                  file=sys.stderr)
            raise SystemExit(1)
        paths.append(path)
    if not quiet:
        print(f"wrote {len(paths)} order log(s) to {args.record}",
              file=sys.stderr)
    return paths


def _build_runner(args: argparse.Namespace) -> SweepRunner:
    if args.no_cache:
        cache = None
    elif args.cache_backend:
        from ..svc import make_cache_backend

        cache = make_cache_backend(args.cache_backend,
                                   fallback_dir=args.cache_dir)
    else:
        cache = args.cache_dir or default_cache_dir()
    kwargs = {}
    if args.trace_capacity is not None:
        kwargs["trace_capacity"] = args.trace_capacity
    if getattr(args, "obs_sample", None) is not None and args.obs_sample <= 0:
        raise SystemExit("repro-experiments: --obs-sample must be > 0")
    record = getattr(args, "record", None)
    replay = getattr(args, "replay", None)
    if record and replay:
        raise SystemExit(
            "repro-experiments: --record and --replay are mutually exclusive")
    if replay:
        kwargs["replay_logs"] = _load_replay_logs(replay)
    runner = SweepRunner(
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        telemetry=sys.stderr if args.progress else None,
        collect_obs=bool(args.obs),
        collect_trace=bool(args.trace),
        trace_detail=args.trace_detail,
        trace_compact=bool(args.trace_compact),
        executor=args.backend,
        obs_sample=getattr(args, "obs_sample", None),
        record_order=bool(record),
        **kwargs,
    )
    if args.backend:
        # Resolve eagerly: a bad spec should fail before any work runs,
        # and a socket backend should bind now so `worker --connect`
        # processes can join before the first grid is dispatched.
        try:
            backend = runner._resolve_executor()
        except ValueError as exc:
            raise SystemExit(str(exc))
        if hasattr(backend, "address"):
            print(f"sweep server listening on {backend.address}; join with: "
                  f"repro-experiments worker --connect {backend.address}",
                  file=sys.stderr)
    return runner


def _close_runner(runner: SweepRunner) -> None:
    """Release service-layer resources the CLI created for this run
    (socket listeners, sqlite handles, write-behind upload queues)."""
    from ..svc.backends import CacheBackend
    from ..svc.executors import ExecutorBackend

    if isinstance(runner.executor, ExecutorBackend):
        runner.executor.close()
    # isinstance against the runtime-checkable protocol: True for the
    # svc backends (which hold sockets/handles/queues), False for the
    # plain ResultCache and for None.
    if isinstance(runner.cache, CacheBackend):
        try:
            runner.cache.close()
        except OSError:
            pass


def _open_text_output(path: str, what: str):
    """Open ``path`` for text writing; ``-`` yields stdout (not closed).

    Every subcommand's writable-output option funnels through here so
    an unwritable path fails with one consistent message::

        repro-experiments: cannot write <what> <path>: <reason>
    """
    import contextlib as _contextlib

    if path == "-":
        return _contextlib.nullcontext(sys.stdout)
    try:
        return open(path, "w", encoding="utf-8")
    except OSError as exc:
        print(f"repro-experiments: cannot write {what} {path}: {exc}",
              file=sys.stderr)
        raise SystemExit(1)


def _write_obs_document(
    args: argparse.Namespace, runner: SweepRunner, quiet: bool = False
) -> Optional[str]:
    """Emit the single-run metrics document ``--obs FILE`` asked for.

    Returns the path written (for the JSON document's output map);
    ``quiet`` suppresses the stderr note so ``--json`` runs emit
    nothing but the document itself.  ``FILE`` may be ``-`` for
    stdout.  With ``--obs-sample`` the document also carries the
    per-point sampled series under ``"timeseries"``.
    """
    if not args.obs:
        return None
    import json as _json

    from .. import __version__

    doc = {
        "version": __version__,
        "obs": runner.obs.snapshot(),
        "telemetry": runner.telemetry.summary(),
    }
    if runner.timeseries:
        doc["timeseries"] = runner.timeseries
    with _open_text_output(args.obs, "obs document") as fh:
        _json.dump(doc, fh, indent=2)
        fh.write("\n")
    if not quiet and args.obs != "-":
        print(f"wrote obs metrics to {args.obs}", file=sys.stderr)
    return args.obs


def _safe_label(label: str) -> str:
    """A point label flattened into a filesystem-safe file stem."""
    import re as _re

    return _re.sub(r"[^A-Za-z0-9._=-]+", "_", label)


def _write_trace_documents(
    args: argparse.Namespace, runner: SweepRunner, quiet: bool = False
) -> List[str]:
    """Write one ``<label>.trace.json`` per computed point into
    ``--trace DIR``; returns the paths written.  ``DIR`` may be ``-``:
    traces then stream to stdout as JSON lines
    (``{"label": ..., "trace": {...}}``) for piping."""
    if not args.trace:
        return []
    import json as _json
    import os as _os

    if args.trace == "-":
        for label in sorted(runner.traces):
            sys.stdout.write(_json.dumps(
                {"label": label, "trace": runner.traces[label]}) + "\n")
        return ["-"] if runner.traces else []
    try:
        _os.makedirs(args.trace, exist_ok=True)
    except OSError as exc:
        print(f"repro-experiments: cannot write trace documents "
              f"{args.trace}: {exc}", file=sys.stderr)
        raise SystemExit(1)
    paths: List[str] = []
    for label in sorted(runner.traces):
        path = _os.path.join(args.trace, f"{_safe_label(label)}.trace.json")
        with _open_text_output(path, "trace document") as fh:
            _json.dump(runner.traces[label], fh, indent=1)
            fh.write("\n")
        paths.append(path)
    if not quiet:
        print(f"wrote {len(paths)} trace(s) to {args.trace}", file=sys.stderr)
    return paths


# -- the `sweep` subcommand -----------------------------------------------------


def _int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _str_list(text: str) -> List[str]:
    return [part for part in text.split(",") if part]


def sweep_main(argv: List[str]) -> int:
    """``repro-experiments sweep`` — run an ad-hoc (app x policy x CPUs)
    grid through the runner and print one row per point."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments sweep",
        description="Run an arbitrary (app x policy x CPU-count) grid "
                    "through the parallel sweep runner.",
    )
    parser.add_argument("--apps", type=_str_list, default=list(ALL_APPS),
                        metavar="A,B", help=f"applications (default: all of {','.join(ALL_APPS)})")
    parser.add_argument("--policies", type=_str_list, default=list(POLICIES),
                        metavar="P,Q", help=f"policies (default: all of {','.join(POLICIES)})")
    parser.add_argument("--cpus", type=_int_list, default=None, metavar="1,4,16",
                        help="CPU counts (default: each app's own counts)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="workload scale factor (default 0.1)")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--machine", choices=sorted(MACHINES), default="power3-sp",
                        help="machine preset (default power3-sp)")
    parser.add_argument("--json", action="store_true",
                        help="print results as a JSON document")
    _add_runner_args(parser)
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")

    machine = get_machine(args.machine)
    points: List[SweepPoint] = []
    for name in args.apps:
        try:
            app = get_app(name)
        except KeyError as exc:
            parser.error(str(exc))
        cpus = args.cpus if args.cpus is not None else list(app.cpu_counts)
        for policy in args.policies:
            if policy == "Subset" and not app.has_subset_policy:
                continue
            for n in cpus:
                if n > max(app.cpu_counts):
                    continue
                points.append(SweepPoint.policy_cell(
                    app.name, policy, n,
                    scale=args.scale, machine=machine, seed=args.seed,
                ))
    if not points:
        print("sweep: empty grid", file=sys.stderr)
        return 2

    runner = _build_runner(args)
    try:
        results = runner.run(points)
    finally:
        _close_runner(runner)
    ordered = [results[p] for p in points]

    obs_path = _write_obs_document(args, runner, quiet=args.json)
    trace_paths = _write_trace_documents(args, runner, quiet=args.json)
    order_paths = _write_order_logs(args, runner, quiet=args.json)
    for r in ordered:
        if r.status == "diverged" and r.divergence is not None:
            print(f"sweep: {r.point.label}: diverged from its replay log "
                  f"at decision #{r.divergence.get('index')} "
                  f"(t={r.divergence.get('sim_time')}, "
                  f"channel={r.divergence.get('channel')})",
                  file=sys.stderr)

    if args.json:
        import json as _json

        doc = {
            "sweep": [
                {
                    "app": r.point.app,
                    "policy": r.point.policy,
                    "cpus": r.point.procs,
                    "status": r.status,
                    "cached": r.cached,
                    "payload": r.payload,
                }
                for r in ordered
            ],
            "telemetry": runner.telemetry.summary(),
        }
        outputs = {}
        if obs_path:
            outputs["obs"] = obs_path
        if trace_paths:
            outputs["traces"] = trace_paths
        if order_paths:
            outputs["order_logs"] = order_paths
        if outputs:
            doc["outputs"] = outputs
        print(_json.dumps(doc, indent=2))
    else:
        print(f"{'app':<9s} {'policy':<9s} {'cpus':>4s} {'status':>8s} "
              f"{'cached':>6s} {'time(s)':>10s}")
        print("-" * 52)
        for r in ordered:
            t = "-" if r.sim_time is None else f"{r.sim_time:.3f}"
            print(f"{r.point.app:<9s} {r.point.policy:<9s} "
                  f"{r.point.procs:>4d} {r.status:>8s} "
                  f"{str(r.cached).lower():>6s} {t:>10s}")
        s = runner.telemetry.summary()
        print(f"({s['ok']}/{s['total']} ok, {s['cached']} cached, "
              f"{s['failed']} failed, hit rate {s['hit_rate']:.0%})")
    return 0 if all(r.ok for r in ordered) else 1


# -- fault plans ----------------------------------------------------------------


def _add_faults_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--faults", metavar="FILE", default=None,
                        help="run under the fault-injection plan in FILE "
                             "(JSON, see docs/faults.md); an empty plan "
                             "changes nothing")
    parser.add_argument("--plan", metavar="NAME", default=None,
                        choices=sorted(CANNED_PLANS),
                        help="run under a canned fault plan "
                             f"(one of {','.join(sorted(CANNED_PLANS))})")


def _load_fault_plan(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> Optional[FaultPlan]:
    """The plan ``--faults``/``--plan`` selected, or None."""
    if args.faults and args.plan:
        parser.error("--faults and --plan are mutually exclusive")
    if args.plan:
        return canned_plan(args.plan)
    if args.faults:
        try:
            return FaultPlan.from_file(args.faults)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            parser.error(f"--faults {args.faults}: {exc}")
    return None


# -- the `trace compact` subcommand ---------------------------------------------


def _compact_inputs(paths: List[str], suffixes: tuple) -> List[str]:
    """Expand files/directories into trace files with given suffixes."""
    import os as _os

    found: List[str] = []
    for path in paths:
        if _os.path.isdir(path):
            for entry in sorted(_os.listdir(path)):
                if entry.endswith(suffixes):
                    found.append(_os.path.join(path, entry))
        else:
            found.append(path)
    return found


def trace_compact_main(argv: List[str]) -> int:
    """``repro-experiments trace compact`` — compress, decompress or
    inspect on-disk trace files (VGVTRACE text <-> VGVZ binary)."""
    import json as _json
    import os as _os

    from ..compact import CompactReader, compress_trace_bytes
    from ..vt import load_trace, save_trace, save_trace_compact

    parser = argparse.ArgumentParser(
        prog="repro-experiments trace compact",
        description="Streaming trace compaction: convert VGVTRACE text "
                    "files (save_trace) to/from the compact VGVZ binary "
                    "format, or report compression statistics.  The "
                    "round trip is lossless, record for record.",
    )
    parser.add_argument("action", choices=("compress", "decompress", "stats"),
                        help="compress text->VGVZ, decompress VGVZ->text, "
                             "or report per-file compaction statistics")
    parser.add_argument("paths", nargs="+", metavar="PATH",
                        help="trace files, or directories to scan "
                             "(*.vgv/*.trace for compress, *.vgvz for "
                             "decompress, both for stats)")
    parser.add_argument("--out-dir", metavar="DIR", default=None,
                        help="write outputs here instead of next to inputs")
    parser.add_argument("--no-suppress", action="store_true",
                        help="disable repeat suppression (keep only the "
                             "delta/varint framing) when compressing")
    parser.add_argument("--json", action="store_true",
                        help="print one JSON document instead of a table")
    args = parser.parse_args(argv)

    text_suffixes = (".vgv", ".trace", ".txt")
    if args.action == "compress":
        suffixes: tuple = text_suffixes
    elif args.action == "decompress":
        suffixes = (".vgvz",)
    else:
        suffixes = text_suffixes + (".vgvz",)
    inputs = _compact_inputs(args.paths, suffixes)
    if not inputs:
        print("trace compact: no trace files found", file=sys.stderr)
        return 2

    def _out_path(src: str, new_suffix: str) -> str:
        stem = _os.path.basename(src)
        for sfx in text_suffixes + (".vgvz",):
            if stem.endswith(sfx):
                stem = stem[: -len(sfx)]
                break
        directory = args.out_dir or _os.path.dirname(src) or "."
        if args.out_dir:
            _os.makedirs(args.out_dir, exist_ok=True)
        return _os.path.join(directory, stem + new_suffix)

    rows: List[dict] = []
    for src in inputs:
        try:
            if args.action == "compress":
                trace = load_trace(src)
                dst = _out_path(src, ".vgvz")
                stats = save_trace_compact(trace, dst,
                                           suppress=not args.no_suppress)
                row = {"file": src, "out": dst, **stats.to_dict(),
                       "text_bytes": _os.path.getsize(src)}
            elif args.action == "decompress":
                reader = CompactReader.from_file(src)
                trace = reader.read_trace()
                dst = _out_path(src, ".vgv")
                save_trace(trace, dst)
                row = {"file": src, "out": dst,
                       "raw_records": trace.raw_record_count,
                       "model_bytes": trace.size_bytes,
                       "compact_bytes": _os.path.getsize(src)}
            else:
                if src.endswith(".vgvz"):
                    reader = CompactReader.from_file(src)
                    trace = reader.read_trace()
                    compact_size = _os.path.getsize(src)
                else:
                    trace = load_trace(src)
                    data, _stats = compress_trace_bytes(
                        trace, suppress=not args.no_suppress)
                    compact_size = len(data)
                model = trace.size_bytes
                row = {
                    "file": src,
                    "raw_records": trace.raw_record_count,
                    "model_bytes": model,
                    "compact_bytes": compact_size,
                    "bytes_per_record": round(
                        compact_size / trace.raw_record_count, 3
                    ) if trace.raw_record_count else 0.0,
                    "ratio": round(model / compact_size, 2)
                    if compact_size else 0.0,
                }
        except (OSError, ValueError) as exc:
            print(f"trace compact: {src}: {exc}", file=sys.stderr)
            return 1
        rows.append(row)

    if args.json:
        print(_json.dumps({"action": args.action, "files": rows}, indent=2))
        return 0
    for row in rows:
        parts = [row["file"]]
        if "out" in row:
            parts.append(f"-> {row['out']}")
        parts.append(f"{row['raw_records']:,} records")
        parts.append(f"model {row['model_bytes']:,} B")
        if "compact_bytes" in row:
            parts.append(f"compact {row['compact_bytes']:,} B")
        if "ratio" in row:
            parts.append(f"x{row['ratio']:.1f}")
        print("  ".join(str(p) for p in parts))
    return 0


# -- the `trace` subcommand -----------------------------------------------------


def trace_main(argv: List[str]) -> int:
    """``repro-experiments trace`` — run one (app, policy, CPUs) point
    with causal tracing on and print its critical-path / perturbation
    summary."""
    if argv and argv[0] == "compact":
        return trace_compact_main(argv[1:])
    from ..obs.analysis import render_trace_summary
    from ..obs.export import save_trace_svg, write_chrome_trace
    from ..obs.trace import DEFAULT_CAPACITY
    from ..runner.worker import execute_point

    parser = argparse.ArgumentParser(
        prog="repro-experiments trace",
        description="Trace one simulated run: per-track utilization, the "
                    "critical path through spans and causal flow edges, "
                    "and the instrumentation-perturbation breakdown.",
    )
    parser.add_argument("--app", default="smg98",
                        help=f"application (one of {','.join(ALL_APPS)}; "
                             "default smg98)")
    parser.add_argument("--policy", default="Dynamic",
                        help=f"instrumentation policy (one of "
                             f"{','.join(POLICIES)}; default Dynamic)")
    parser.add_argument("--cpus", type=int, default=4,
                        help="process count (default 4)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="workload scale factor (default 0.1)")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--machine", choices=sorted(MACHINES),
                        default="power3-sp",
                        help="machine preset (default power3-sp)")
    parser.add_argument("--detail", choices=("fine", "coarse"),
                        default="fine", help="trace detail level")
    parser.add_argument("--capacity", type=int, default=DEFAULT_CAPACITY,
                        metavar="N", help="per-track ring-buffer bound "
                                          f"(default {DEFAULT_CAPACITY})")
    parser.add_argument("--compact", action="store_true",
                        help="fold repeated event subsequences when a ring "
                             "fills instead of dropping immediately")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="also write the raw trace document (JSON)")
    parser.add_argument("--chrome", metavar="FILE", default=None,
                        help="also export Chrome trace-event JSON "
                             "(chrome://tracing / Perfetto)")
    parser.add_argument("--svg", metavar="FILE", default=None,
                        help="also render a static SVG timeline")
    parser.add_argument("--vgv", metavar="FILE", default=None,
                        help="also save the postmortem VT trace as a "
                             "VGVTRACE text file (see `trace compact`)")
    parser.add_argument("--vgvz", metavar="FILE", default=None,
                        help="also save the postmortem VT trace in the "
                             "compact VGVZ binary format")
    args = parser.parse_args(argv)

    try:
        get_app(args.app)
    except KeyError as exc:
        parser.error(str(exc))
    if args.policy not in POLICIES:
        parser.error(f"unknown policy {args.policy!r}; known: "
                     f"{','.join(POLICIES)}")

    point = SweepPoint.policy_cell(
        args.app, args.policy, args.cpus,
        scale=args.scale, machine=get_machine(args.machine), seed=args.seed,
    )
    envelope = execute_point(point, collect_trace=True,
                             trace_detail=args.detail,
                             trace_capacity=args.capacity,
                             trace_compact=args.compact)
    if envelope["status"] != "ok":
        print(f"repro-experiments trace: {point.label}: "
              f"{envelope.get('error', envelope['status'])}",
              file=sys.stderr)
        return 1
    doc = envelope["trace"]
    elapsed = envelope["payload"].get("time")

    if args.vgv or args.vgvz:
        # The postmortem VT TraceFile never travels through the worker
        # envelope, so re-run the (deterministic) point in-process.
        from ..dynprof import run_policy_job
        from ..vt import save_trace, save_trace_compact

        _result, job = run_policy_job(
            get_app(args.app), args.policy, args.cpus,
            scale=args.scale, machine=get_machine(args.machine),
            seed=args.seed,
        )
        if args.vgv:
            save_trace(job.trace, args.vgv)
            print(f"wrote VGVTRACE text to {args.vgv}", file=sys.stderr)
        if args.vgvz:
            stats = save_trace_compact(job.trace, args.vgvz)
            print(f"wrote VGVZ trace to {args.vgvz} "
                  f"({stats.raw_records:,} records, "
                  f"{stats.compact_bytes:,} B, x{stats.ratio:.1f} vs the "
                  f"volume model)", file=sys.stderr)

    if args.out:
        import json as _json

        with _open_text_output(args.out, "trace document") as fh:
            _json.dump(doc, fh, indent=1)
            fh.write("\n")
        if args.out != "-":
            print(f"wrote trace document to {args.out}", file=sys.stderr)
    if args.chrome:
        write_chrome_trace(doc, args.chrome)
        print(f"wrote Chrome trace to {args.chrome}", file=sys.stderr)
    if args.svg:
        save_trace_svg(doc, args.svg,
                       title=f"{args.app} {args.policy} @{args.cpus}")
        print(f"wrote SVG timeline to {args.svg}", file=sys.stderr)

    folded = doc.get("folded_events", 0)
    folded_note = f", folded={folded}" if folded else ""
    print(f"trace: {point.label} (detail={args.detail}, "
          f"dropped={doc['dropped_events']}{folded_note})")
    print()
    print(render_trace_summary(doc, elapsed=elapsed))
    return 0


# -- the `chaos` subcommand -----------------------------------------------------


def chaos_main(argv: List[str]) -> int:
    """``repro-experiments chaos`` — run one simulated point under a
    fault-injection plan and report the recovery outcome (quarantined
    ranks, coverage, injected-fault counts)."""
    from ..runner.worker import execute_point

    parser = argparse.ArgumentParser(
        prog="repro-experiments chaos",
        description="Run one (app, policy/instrument, CPUs) point under "
                    "a deterministic fault-injection plan; the tool "
                    "degrades gracefully (quarantine + partial coverage) "
                    "instead of failing.",
    )
    parser.add_argument("--kind", choices=("instrument", "policy"),
                        default="instrument",
                        help="point kind: 'instrument' = a Figure 9 cell "
                             "(default), 'policy' = a Figure 7 cell")
    parser.add_argument("--app", default="sweep3d",
                        help=f"application (one of {','.join(ALL_APPS)}; "
                             "default sweep3d)")
    parser.add_argument("--policy", default="Dynamic",
                        help="instrumentation policy for --kind policy "
                             "(default Dynamic)")
    parser.add_argument("--cpus", type=int, default=32,
                        help="process count (default 32: spans several "
                             "nodes, so node-level faults bite)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="workload scale factor (default 0.02)")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--machine", choices=sorted(MACHINES),
                        default="power3-sp",
                        help="machine preset (default power3-sp)")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the point twice and fail unless both "
                             "payloads are bit-identical")
    parser.add_argument("--json", action="store_true",
                        help="print the payload as a JSON document")
    parser.add_argument("--obs", metavar="FILE", default=None,
                        help="collect simulator metrics during the run and "
                             "write them as a JSON document to FILE "
                             "('-' = stdout)")
    parser.add_argument("--obs-sample", type=float, default=None,
                        metavar="SEC",
                        help="sample the metrics registry every SEC "
                             "simulated seconds; the series ride the "
                             "--obs document")
    parser.add_argument("--record", metavar="FILE", default=None,
                        help="record the run's nondeterminism order log to "
                             "FILE (replay it later with `replay verify` "
                             "or --replay)")
    parser.add_argument("--replay", metavar="FILE", default=None,
                        help="verify the run against a recorded order log; "
                             "divergence fails with a first-divergence "
                             "report")
    _add_faults_args(parser)
    args = parser.parse_args(argv)
    if args.obs_sample is not None and args.obs_sample <= 0:
        parser.error("--obs-sample must be > 0")
    if args.record and args.replay:
        parser.error("--record and --replay are mutually exclusive")

    try:
        get_app(args.app)
    except KeyError as exc:
        parser.error(str(exc))
    if args.policy not in POLICIES:
        parser.error(f"unknown policy {args.policy!r}; known: "
                     f"{','.join(POLICIES)}")
    plan = _load_fault_plan(args, parser)
    if plan is None:
        plan = canned_plan("daemon-crash-attach")

    machine = get_machine(args.machine)
    if args.kind == "policy":
        point = SweepPoint.policy_cell(
            args.app, args.policy, args.cpus,
            scale=args.scale, machine=machine, seed=args.seed, faults=plan,
        )
    else:
        point = SweepPoint.instrument(
            args.app, args.cpus,
            scale=args.scale, machine=machine, seed=args.seed, faults=plan,
        )

    replay_blob = None
    if args.replay:
        import base64 as _base64

        try:
            with open(args.replay, "rb") as fh:
                replay_blob = _base64.b64encode(fh.read()).decode("ascii")
        except OSError as exc:
            print(f"repro-experiments chaos: --replay {args.replay}: {exc}",
                  file=sys.stderr)
            return 1

    # No cache: the whole purpose is to exercise the recovery paths,
    # and --check-determinism needs two real executions.
    runs = 2 if args.check_determinism else 1
    envelopes = [
        execute_point(point, collect_obs=bool(args.obs),
                      obs_sample=args.obs_sample,
                      record_order=bool(args.record),
                      replay_log=replay_blob)
        for _ in range(runs)
    ]
    for envelope in envelopes:
        if envelope["status"] == "diverged":
            divergence = envelope.get("divergence") or {}
            print(f"chaos: {point.label}: DIVERGED from {args.replay} "
                  f"at decision #{divergence.get('index')} "
                  f"(t={divergence.get('sim_time')}, "
                  f"channel={divergence.get('channel')})",
                  file=sys.stderr)
            import json as _json

            print(f"  expected: "
                  f"{_json.dumps(divergence.get('expected'), sort_keys=True)}",
                  file=sys.stderr)
            print(f"  actual:   "
                  f"{_json.dumps(divergence.get('actual'), sort_keys=True)}",
                  file=sys.stderr)
            return 1
        if envelope["status"] != "ok":
            print(f"repro-experiments chaos: {point.label}: "
                  f"{envelope.get('error', envelope['status'])}",
                  file=sys.stderr)
            return 1

    if args.record:
        import base64 as _base64

        try:
            with open(args.record, "wb") as fh:
                fh.write(_base64.b64decode(envelopes[0]["order_log"]))
        except OSError as exc:
            print(f"repro-experiments chaos: cannot write order log "
                  f"{args.record}: {exc}", file=sys.stderr)
            return 1
        if not args.json:
            print(f"wrote order log to {args.record}", file=sys.stderr)

    import json as _json

    payloads = [e["payload"] for e in envelopes]
    if args.check_determinism:
        blobs = [_json.dumps(p, sort_keys=True) for p in payloads]
        if blobs[0] != blobs[1]:
            print("chaos: NON-DETERMINISTIC: two runs of "
                  f"{point.label} under the same plan and seed differ",
                  file=sys.stderr)
            return 1

    if args.obs:
        from .. import __version__

        obs_doc = {
            "version": __version__,
            "point": point.canonical(),
            "obs": envelopes[0].get("obs", {}),
        }
        if envelopes[0].get("timeseries"):
            obs_doc["timeseries"] = {point.label: envelopes[0]["timeseries"]}
        with _open_text_output(args.obs, "obs document") as fh:
            _json.dump(obs_doc, fh, indent=2)
            fh.write("\n")
        if not args.json and args.obs != "-":
            print(f"wrote obs metrics to {args.obs}", file=sys.stderr)

    payload = payloads[0]
    report = payload.get("faults") or {}
    if args.json:
        doc = {
            "point": point.canonical(),
            "plan": plan.to_dict(),
            "payload": payload,
        }
        if args.check_determinism:
            doc["deterministic"] = True
        print(_json.dumps(doc, indent=2))
        return 0

    print(f"chaos: {point.label} under plan "
          f"({len(plan)} spec(s){': ' + plan.note if plan.note else ''})")
    if "time" in payload:
        print(f"  time: {payload['time']:.4f} s (simulated)")
    quarantined = report.get("quarantined_ranks", [])
    coverage = report.get("coverage")
    print(f"  quarantined ranks: {quarantined if quarantined else 'none'}")
    if coverage is not None:
        print(f"  coverage: {coverage:.0%} of ranks instrumented")
    injected = report.get("injected") or {}
    if injected:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(injected.items()))
        print(f"  injected: {pairs}")
    else:
        print("  injected: none (plan never fired at this scale)")
    if report.get("client_retries"):
        print(f"  dpcl client retries: {report['client_retries']}")
    if args.check_determinism:
        print("  determinism: OK (two runs bit-identical)")
    if args.replay:
        print(f"  replay: OK (bit-identical to {args.replay})")
    return 0


def _render_items(
    items: List[ExperimentOutput],
    args: argparse.Namespace,
    json_items: List[dict],
    csv_chunks: List[str],
) -> None:
    for item in items:
        if isinstance(item, str):
            if args.json:
                json_items.append({"type": "text", "text": item})
            else:
                print(item)
        else:
            # Anything figure-like: FigureResult, OverheadTimeline, …
            # — the render/to_csv/to_dict trio is the contract.
            csv_chunks.append(item.to_csv())
            if args.json:
                json_items.append({"type": "figure", **item.to_dict()})
            else:
                print(item.render())


# -- entry point ----------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "replay":
        from .replaycmd import replay_main

        return replay_main(argv[1:])
    if argv and argv[0] == "obs":
        from .obscmd import obs_main

        return obs_main(argv[1:])
    if argv and argv[0] in ("serve-cache", "serve"):
        from ..svc.httpcache import serve_cache_main

        return serve_cache_main(argv[1:])
    if argv and argv[0] == "worker":
        from ..svc.worker import worker_main

        return worker_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Dynamic "
                    "Instrumentation of Large-Scale MPI and OpenMP "
                    "Applications' (IPPS 2003).  Use the `sweep` "
                    "subcommand for ad-hoc grids.",
    )
    parser.add_argument("experiments", nargs="+", choices=EXPERIMENTS,
                        help="which tables/figures to regenerate")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="workload scale factor (default 0.1; 1.0 "
                             "reproduces paper-magnitude runtimes)")
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument("--quick", action="store_true",
                        help="cap process counts for a fast smoke run")
    parser.add_argument("--csv", metavar="FILE",
                        help="also dump figure data as CSV to FILE")
    parser.add_argument("--json", action="store_true",
                        help="print results as one JSON document on stdout "
                             "instead of rendered text")
    _add_runner_args(parser)
    _add_faults_args(parser)
    args = parser.parse_args(argv)
    if args.jobs < 0:
        parser.error("--jobs must be >= 0")
    fault_plan = _load_fault_plan(args, parser)

    runner = _build_runner(args)
    json_items: List[dict] = []
    csv_chunks: List[str] = []
    try:
        for name in args.experiments:
            try:
                items = run_experiment(name, args.scale, args.seed, args.quick,
                                       runner=runner, faults=fault_plan)
            except SweepError as exc:
                print(f"repro-experiments: {name}: {exc}", file=sys.stderr)
                return 1
            _render_items(items, args, json_items, csv_chunks)
    finally:
        _close_runner(runner)
    obs_path = _write_obs_document(args, runner, quiet=args.json)
    trace_paths = _write_trace_documents(args, runner, quiet=args.json)
    order_paths = _write_order_logs(args, runner, quiet=args.json)
    if args.json:
        import json as _json

        doc = {"results": json_items,
               "telemetry": runner.telemetry.summary()}
        outputs = {}
        if obs_path:
            outputs["obs"] = obs_path
        if trace_paths:
            outputs["traces"] = trace_paths
        if order_paths:
            outputs["order_logs"] = order_paths
        if outputs:
            doc["outputs"] = outputs
        print(_json.dumps(doc, indent=2))
    if args.csv and csv_chunks:
        with open(args.csv, "w", encoding="utf-8") as fh:
            fh.write("\n".join(csv_chunks))
        if not args.json:
            print(f"wrote CSV to {args.csv}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
