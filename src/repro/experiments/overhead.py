"""The overhead-timeline experiment — instrumentation cost over time.

The paper argues that instrumentation overhead must be observed *over*
a run (probe cost tracks application phase structure), but its figures
only report end-of-run totals.  This experiment produces the figure
family the paper gestures at: cumulative instrumentation overhead
versus simulated time for the four ASCI benchmark apps under the Full
(static) and Dynamic (dynprof) policies, built from the sampled
time-series telemetry of :mod:`repro.obs.timeseries`.

Each (app, policy) cell executes in-process through
:func:`~repro.runner.worker.execute_point` with the metrics sampler
on, deliberately bypassing the result cache: a cached point carries no
sampled series because no simulation ran (the same reasoning that
keeps ``tracevol-compress`` in-process).  The overhead curve merges
every per-probe delta series with the ``vt.flush`` and
``dynprof.patch`` span series into one cumulative sum; the acceptance
property — pinned by tests — is that the curve's final value matches
the end-of-run snapshot totals to float-addition tolerance, i.e. the
windowed samples *telescope* to the truth rather than approximating
it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..apps import get_app
from ..cluster import MachineSpec, POWER3_SP
from ..obs.timeseries import DEFAULT_INTERVAL, overhead_series
from ..runner import SweepPoint

__all__ = ["OverheadTimeline", "run_overhead_timeline", "OVERHEAD_APPS",
           "OVERHEAD_POLICIES"]

#: The four ASCI applications of the paper's evaluation.
OVERHEAD_APPS = ("smg98", "sppm", "sweep3d", "umt98")

#: Full = every function statically probed (the worst case the paper
#: measures); Dynamic = dynprof's runtime-inserted subset.
OVERHEAD_POLICIES = ("Full", "Dynamic")

_SPARK_CHARS = " .:-=+*#%@"


def _sparkline(values: Sequence[float], width: int = 40) -> str:
    """A pure-ASCII sparkline of a (non-negative) series."""
    if not values:
        return ""
    # Downsample by taking the max of each bucket so short spikes of
    # overhead stay visible.
    n = len(values)
    buckets: List[float] = []
    step = max(1, (n + width - 1) // width)
    for i in range(0, n, step):
        buckets.append(max(values[i:i + step]))
    top = max(buckets)
    if top <= 0:
        return _SPARK_CHARS[0] * len(buckets)
    scale = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(scale, int(round(v / top * scale)))] for v in buckets
    )


class OverheadTimeline:
    """The result of one overhead-timeline run: a curve per cell.

    Quacks like a :class:`~repro.experiments.results.FigureResult`
    (``render`` / ``to_csv`` / ``to_dict``) so the CLI renders and
    exports it with the same machinery, but carries float time axes a
    FigureResult's integer x-axis cannot.
    """

    def __init__(self, interval: float, scale: float, seed: int) -> None:
        self.title = "Instrumentation overhead vs. simulated time"
        self.interval = interval
        self.scale = scale
        self.seed = seed
        #: One dict per (app, policy) cell — see :meth:`add_cell`.
        self.cells: List[Dict[str, Any]] = []

    def add_cell(
        self,
        app: str,
        policy: str,
        n_cpus: int,
        times: List[float],
        cumulative: List[float],
        snapshot_overhead: float,
        program_time: float,
        samples: int,
        dropped: int,
    ) -> None:
        self.cells.append({
            "app": app,
            "policy": policy,
            "n_cpus": n_cpus,
            "times": times,
            "cumulative": cumulative,
            #: End-of-run truth from the merged registry snapshot
            #: (probe totals + flush/patch span totals).
            "snapshot_overhead": snapshot_overhead,
            "final_overhead": cumulative[-1] if cumulative else 0.0,
            "program_time": program_time,
            "samples": samples,
            "dropped": dropped,
        })

    # -- the acceptance property ----------------------------------------------

    def consistency(self) -> float:
        """Worst relative gap between a curve's final value and the
        end-of-run snapshot, over all cells (0.0 for a perfect run).

        Ring evictions break the telescoping property (early windows
        are gone from the decoded series), so cells with drops are
        excluded — the ``dropped`` count makes that loss explicit.
        """
        worst = 0.0
        for cell in self.cells:
            if cell["dropped"]:
                continue
            truth = cell["snapshot_overhead"]
            got = cell["final_overhead"]
            denom = max(abs(truth), 1e-30)
            worst = max(worst, abs(got - truth) / denom)
        return worst

    def monotonic(self) -> bool:
        """True when every cumulative curve is non-decreasing (overhead
        never un-happens; a violation means a negative sampled delta)."""
        for cell in self.cells:
            cum = cell["cumulative"]
            if any(b < a for a, b in zip(cum, cum[1:])):
                return False
        return True

    # -- the figure-like contract ---------------------------------------------

    def render(self) -> str:
        lines = [self.title,
                 f"(sampled every {self.interval:g} simulated s, "
                 f"scale={self.scale:g}, seed={self.seed})", ""]
        lines.append(f"{'app':<9s} {'policy':<8s} {'cpus':>4s} "
                     f"{'overhead(s)':>12s} {'of program':>10s} "
                     f"{'samples':>7s}  timeline")
        lines.append("-" * 92)
        for cell in self.cells:
            frac = (cell["final_overhead"] / cell["program_time"]
                    if cell["program_time"] else 0.0)
            # Windowed (per-sample) overhead, so the sparkline shows
            # *when* the cost was paid, not just that it accumulated.
            cum = cell["cumulative"]
            windows = [b - a for a, b in zip([0.0] + cum[:-1], cum)]
            spark = _sparkline(windows)
            note = (f" (+{cell['dropped']} dropped)"
                    if cell["dropped"] else "")
            lines.append(
                f"{cell['app']:<9s} {cell['policy']:<8s} "
                f"{cell['n_cpus']:>4d} {cell['final_overhead']:>12.6f} "
                f"{frac:>9.2%} {cell['samples']:>7d}  |{spark}|{note}"
            )
        lines.append("")
        lines.append("timeline: windowed instrumentation seconds per sample "
                     "interval (probe events + trace flushes + patches), "
                     "scaled to each row's own peak")
        return "\n".join(lines)

    def to_csv(self) -> str:
        rows = ["app,policy,n_cpus,t,cumulative_overhead"]
        for cell in self.cells:
            for t, v in zip(cell["times"], cell["cumulative"]):
                rows.append(f"{cell['app']},{cell['policy']},"
                            f"{cell['n_cpus']},{t!r},{v!r}")
        return "\n".join(rows) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "title": self.title,
            "interval": self.interval,
            "scale": self.scale,
            "seed": self.seed,
            "cells": [dict(cell) for cell in self.cells],
        }

    def __repr__(self) -> str:
        return (f"<OverheadTimeline {len(self.cells)} cells "
                f"@{self.interval:g}s>")


def _snapshot_overhead(envelope: Dict[str, Any]) -> float:
    """End-of-run instrumentation seconds from the envelope's obs
    snapshot + probe profile — the truth the curve must telescope to."""
    ts = envelope.get("timeseries", {})
    total = sum(row["overhead"] for row in ts.get("probes", {}).values())
    spans = envelope.get("obs", {}).get("spans", {})
    for name in ("vt.flush", "dynprof.patch"):
        agg = spans.get(name)
        if agg:
            total += agg["total"]
    return total


def run_overhead_timeline(
    apps: Sequence[str] = OVERHEAD_APPS,
    policies: Sequence[str] = OVERHEAD_POLICIES,
    n_cpus: int = 8,
    scale: float = 0.1,
    seed: int = 0,
    machine: MachineSpec = POWER3_SP,
    interval: Optional[float] = None,
) -> OverheadTimeline:
    """Run every (app, policy) cell with the sampler on; returns the
    timeline figure.  ``interval`` defaults to
    :data:`~repro.obs.timeseries.DEFAULT_INTERVAL` simulated seconds.
    """
    from ..runner.worker import execute_point

    if interval is None:
        interval = DEFAULT_INTERVAL
    fig = OverheadTimeline(interval=interval, scale=scale, seed=seed)
    for app_name in apps:
        app = get_app(app_name)
        cpus = min(n_cpus, max(app.cpu_counts))
        if cpus not in app.cpu_counts:
            cpus = max(c for c in app.cpu_counts if c <= cpus)
        for policy in policies:
            point = SweepPoint.policy_cell(
                app.name, policy, cpus,
                scale=scale, machine=machine, seed=seed,
            )
            envelope = execute_point(point, collect_obs=True,
                                     obs_sample=interval)
            if envelope["status"] != "ok":
                raise RuntimeError(
                    f"overhead-timeline: {point.label}: "
                    f"{envelope.get('error', envelope['status'])}"
                )
            ts = envelope["timeseries"]
            times, cumulative = overhead_series(ts)
            dropped = sum(
                s.get("dropped", 0)
                for name, s in ts.get("series", {}).items()
                if name.startswith("probe:")
                or name in ("span:vt.flush", "span:dynprof.patch")
            )
            fig.add_cell(
                app=app.name, policy=policy, n_cpus=cpus,
                times=times, cumulative=cumulative,
                snapshot_overhead=_snapshot_overhead(envelope),
                program_time=float(envelope["payload"].get("time") or 0.0),
                samples=int(ts.get("samples", 0)),
                dropped=dropped,
            )
    return fig
