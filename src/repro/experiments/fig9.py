"""Figure 9 — time used by dynprof to create and instrument each target.

For every ASCI kernel and processor count, dynprof spawns the target
(suspended), attaches, patches the bootstrap, starts the run, waits for
the per-rank init callbacks, installs the dynamic probes while the ranks
are captive in the spin, and releases them.  The recorded time is the
tool's wall clock from session start to spin release.

The MPI curves grow with the process count — dynprof must download and
navigate one program structure, and patch one image, per process — while
Umt98's curve is flat: all OpenMP threads share a single image
(Section 5.1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..apps import ALL_APPS, AppSpec, get_app
from ..cluster import Cluster, MachineSpec, POWER3_SP
from ..dynprof import DynProf
from ..faults import FaultInjector, FaultPlan
from ..jobs import MpiJob, OmpJob
from ..runner import SweepPoint, SweepRunner
from ..simt import Environment
from .results import FigureResult

__all__ = [
    "measure_create_and_instrument",
    "measure_create_and_instrument_detail",
    "run_fig9",
]


def measure_create_and_instrument_detail(
    app: AppSpec | str,
    n_cpus: int,
    machine: MachineSpec = POWER3_SP,
    scale: float = 0.02,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
) -> Dict[str, Any]:
    """One Figure 9 data point, with diagnostics.

    Returns ``{"time": ..., "faults": ...}`` where ``faults`` is the
    tool's fault report when an injection plan is armed, else None.
    """
    app = get_app(app) if isinstance(app, str) else app
    env = Environment()
    cluster = Cluster(env, machine, seed=seed)
    injector = FaultInjector.install(faults, cluster)
    exe = app.build_exe(False)
    program = app.make_program(n_cpus, scale)
    if app.kind == "mpi":
        job = MpiJob(env, cluster, exe, n_cpus, program, start_suspended=True)
    else:
        job = OmpJob(env, cluster, exe, n_cpus, program, start_suspended=True)
    # Same sampled-telemetry hook as run_policy_job: a no-op (None)
    # unless obs.timeseries sampling is enabled for this run.
    from ..dynprof.policies import _probe_stats_provider
    from ..obs.timeseries import MetricsSampler

    sampler = MetricsSampler.install(env,
                                     probe_stats=_probe_stats_provider(job))
    tool = DynProf(
        env, cluster, job,
        file_contents={"targets.txt": "\n".join(app.dynamic_targets)},
    )
    proc = tool.run_script("insert-file targets.txt\nstart\nquit\n")
    env.run(until=proc)
    assert tool.create_and_instrument_time is not None
    # Let the job drain so the environment ends cleanly.
    env.run(until=job.completion())
    if sampler is not None:
        sampler.stop()
    env.run()
    if sampler is not None:
        sampler.finish()
    report = tool.fault_report() if injector is not None else None
    return {"time": tool.create_and_instrument_time, "faults": report}


def measure_create_and_instrument(
    app: AppSpec | str,
    n_cpus: int,
    machine: MachineSpec = POWER3_SP,
    scale: float = 0.02,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
) -> float:
    """One Figure 9 data point: dynprof's create+instrument wall time.

    The application's own runtime is irrelevant here, so a tiny
    ``scale`` keeps the measurement cheap; the instrumentation time
    itself does not depend on the workload scale.
    """
    return measure_create_and_instrument_detail(
        app, n_cpus, machine=machine, scale=scale, seed=seed, faults=faults,
    )["time"]


def _fig9_cell_runs(app: AppSpec, n: int) -> bool:
    """Whether Figure 9 has a data point for (app, n CPUs)."""
    if not (n in app.cpu_counts
            or min(app.cpu_counts) <= n <= max(app.cpu_counts)):
        return False
    return not (app.kind == "omp" and n > max(app.cpu_counts))


def run_fig9(
    cpu_counts: Optional[Sequence[int]] = None,
    machine: MachineSpec = POWER3_SP,
    seed: int = 0,
    apps: Optional[Sequence[str]] = None,
    runner: Optional[SweepRunner] = None,
    jobs: int = 1,
    faults: Optional[FaultPlan] = None,
) -> FigureResult:
    """Reproduce Figure 9: one series per application."""
    app_names = list(apps) if apps is not None else list(ALL_APPS)
    all_cpus = cpu_counts
    x: List[int] = sorted(
        set(all_cpus)
        if all_cpus is not None
        else {c for name in app_names for c in get_app(name).cpu_counts}
    )
    fig = FigureResult(
        "fig9",
        "Time to create and instrument",
        "CPUs",
        "Time (s)",
        x,
    )
    points = [
        SweepPoint.instrument(get_app(name).name, n, machine=machine,
                              seed=seed, faults=faults)
        for name in app_names
        for n in x
        if _fig9_cell_runs(get_app(name), n)
    ]
    if runner is None:
        runner = SweepRunner(jobs=jobs)
    payloads = iter(runner.run_grid(points))
    for name in app_names:
        app = get_app(name)
        values: List[Optional[float]] = [
            next(payloads)["time"] if _fig9_cell_runs(app, n) else None
            for n in x
        ]
        fig.add_series(app.title, values)
    fig.notes.append(
        "Umt98's curve is flat: a single shared OpenMP image to instrument"
    )
    return fig
