"""repro.experiments — the harness regenerating every table and figure.

* :func:`run_fig7` / panels a-d — execution time under the Table 3
  policies (Section 4.3);
* :func:`run_fig8a` / :func:`run_fig8b` / :func:`run_fig8c` —
  VT_confsync costs (Section 5);
* :func:`run_fig9` — dynprof's time to create and instrument
  (Section 5.1);
* :func:`render_table1` / 2 / 3 — the paper's tables, generated from
  the live implementation;
* :mod:`~repro.experiments.cli` — the ``repro-experiments`` entry point.
"""

from .fig7 import FIG7_PANELS, fig7_shape_report, run_fig7
from .fig8 import (
    IA32_PROC_COUNTS,
    IBM_PROC_COUNTS,
    measure_confsync,
    run_fig8a,
    run_fig8b,
    run_fig8c,
)
from .fig9 import measure_create_and_instrument, run_fig9
from .overhead import OverheadTimeline, run_overhead_timeline
from .results import FigureResult, Series
from .tables import render_table1, render_table2, render_table3
from .tracevol import TraceVolumeRow, render_tracevol, run_tracevol

__all__ = [
    "FigureResult",
    "Series",
    "run_fig7",
    "fig7_shape_report",
    "FIG7_PANELS",
    "measure_confsync",
    "run_fig8a",
    "run_fig8b",
    "run_fig8c",
    "IBM_PROC_COUNTS",
    "IA32_PROC_COUNTS",
    "run_fig9",
    "measure_create_and_instrument",
    "render_table1",
    "render_table2",
    "render_table3",
    "run_tracevol",
    "render_tracevol",
    "TraceVolumeRow",
    "run_overhead_timeline",
    "OverheadTimeline",
]
