"""Figure 8 — the cost of VT_confsync (dynamic control, Section 5).

Three experiments, each data point the average over 16 calls:

(a) VT_confsync on the IBM system, with and without configuration
    changes — the basic synchronisation cost;
(b) VT_confsync with runtime statistics generation on the IBM system —
    an order of magnitude larger, still negligible next to user
    interaction time;
(c) VT_confsync (no change) on the 16-node IA32 Linux cluster — same
    qualitative behaviour on a different architecture.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from ..cluster import Cluster, IA32_LINUX, MachineSpec, POWER3_SP
from ..jobs import MpiJob
from ..program import ExecutableImage
from ..runner import SweepPoint, SweepRunner
from ..simt import Environment
from ..vt import VTConfig, vt_confsync
from .results import FigureResult

__all__ = [
    "measure_confsync",
    "run_fig8a",
    "run_fig8b",
    "run_fig8c",
    "IBM_PROC_COUNTS",
    "IA32_PROC_COUNTS",
]

#: Processor counts of Figures 8(a)/8(b).
IBM_PROC_COUNTS = (2, 4, 8, 16, 32, 64, 128, 256, 512)
#: Processor counts of Figure 8(c).
IA32_PROC_COUNTS = tuple(range(2, 17))

#: Calls averaged per data point, as in the paper.
REPS = 16


def _confsync_exe(n_funcs: int = 30) -> ExecutableImage:
    """A small statically instrumented target for the confsync runs."""
    exe = ExecutableImage("confsync-bench")
    for i in range(n_funcs):
        exe.define(f"phase{i:02d}")
    exe.instrument_statically()
    return exe


def measure_confsync(
    n_procs: int,
    machine: MachineSpec = POWER3_SP,
    change: bool = False,
    stats: bool = False,
    reps: int = REPS,
    seed: int = 0,
) -> float:
    """Average VT_confsync cost (max over ranks) for one configuration."""
    env = Environment()
    cluster = Cluster(env, machine, seed=seed)
    exe = _confsync_exe()

    # Alternating configurations so every epoch is a genuine change.
    configs = [VTConfig.all_off(), VTConfig.all_on()]

    def program(pctx) -> Generator:
        yield from pctx.call("MPI_Init")
        vt = pctx.image.vt
        rank = pctx.mpi.rank
        if change and rank == 0:
            state = {"i": 0}

            def hook(_pctx):
                cfg = configs[state["i"] % 2]
                state["i"] += 1
                return cfg

            vt.break_hook = hook
        comm = pctx.mpi.comm
        yield from comm.barrier()
        elapsed = []
        for _rep in range(reps):
            t0 = pctx.now
            yield from vt_confsync(pctx, write_stats=stats)
            elapsed.append(pctx.now - t0)
        yield from pctx.call("MPI_Finalize")
        return sum(elapsed) / len(elapsed)

    job = MpiJob(env, cluster, exe, n_procs, program)
    job.start()
    env.run(until=job.completion())
    env.run()
    return max(p.value for p in job.procs)


def _confsync_series(
    proc_counts: Sequence[int],
    machine: MachineSpec,
    seed: int,
    runner: Optional[SweepRunner],
    jobs: int,
    *variants: dict,
) -> List[List[float]]:
    """Run one confsync grid (one sweep point per (variant, procs) cell)
    through a SweepRunner; returns one value list per variant."""
    points = [
        SweepPoint.confsync(p, machine=machine, seed=seed, reps=REPS, **variant)
        for variant in variants
        for p in proc_counts
    ]
    if runner is None:
        runner = SweepRunner(jobs=jobs)
    payloads = iter(runner.run_grid(points))
    return [
        [next(payloads)["time"] for _p in proc_counts]
        for _variant in variants
    ]


def run_fig8a(
    proc_counts: Sequence[int] = IBM_PROC_COUNTS,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
    jobs: int = 1,
) -> FigureResult:
    """Time for VT_confsync on the IBM system, no-change vs. changes."""
    fig = FigureResult(
        "fig8a",
        "Time for VT_confsync on IBM",
        "Number of Processors",
        "Time (s)",
        list(proc_counts),
    )
    fig.notes.append(f"each point averages {REPS} calls (as in the paper)")
    no_change, changes = _confsync_series(
        proc_counts, POWER3_SP, seed, runner, jobs,
        {"change": False}, {"change": True},
    )
    fig.add_series("No Change", no_change)
    fig.add_series("Changes", changes)
    return fig


def run_fig8b(
    proc_counts: Sequence[int] = IBM_PROC_COUNTS,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
    jobs: int = 1,
) -> FigureResult:
    """Time to write statistics within VT_confsync on the IBM system."""
    fig = FigureResult(
        "fig8b",
        "Time to write statistics on IBM",
        "Number of Processors",
        "Time (s)",
        list(proc_counts),
    )
    fig.notes.append(f"each point averages {REPS} calls (as in the paper)")
    (stats,) = _confsync_series(
        proc_counts, POWER3_SP, seed, runner, jobs, {"stats": True},
    )
    fig.add_series("Statistics", stats)
    return fig


def run_fig8c(
    proc_counts: Sequence[int] = IA32_PROC_COUNTS,
    seed: int = 0,
    runner: Optional[SweepRunner] = None,
    jobs: int = 1,
) -> FigureResult:
    """Time for VT_confsync on the IA32 Linux cluster (no change)."""
    fig = FigureResult(
        "fig8c",
        "Time for VT_confsync on IA32",
        "Number of Processors",
        "Time (s)",
        list(proc_counts),
    )
    fig.notes.append(f"each point averages {REPS} calls (as in the paper)")
    (no_change,) = _confsync_series(
        proc_counts, IA32_LINUX, seed, runner, jobs, {"change": False},
    )
    fig.add_series("No Change", no_change)
    return fig
