"""The dynprof command-line tool.

Mirrors the paper's invocation (Section 3.3)::

    dynprof <stdin> <stdout> <timefile> <target executable> <target params> <poe params>

Here the target executable is one of the bundled ASCI kernel analogs and
the whole run happens inside the simulated cluster::

    repro-dynprof script.dp out.txt timings.txt sweep3d --cpus 8
    repro-dynprof - - - smg98 --cpus 4 --scale 0.05   # script on stdin, output on stdout

The script file holds Table 1 commands (insert/remove/insert-file/
remove-file/start/wait/quit); ``@targets`` in an insert-file argument
refers to the app's paper-defined dynamic target list.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..apps import ALL_APPS, InputDeck, deck_scale, get_app
from ..cluster import Cluster, get_machine
from ..jobs import MpiJob, OmpJob
from ..simt import Environment
from .tool import DynProf

__all__ = ["main"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-dynprof",
        description="dynprof: dynamically instrument a (simulated) MPI/OpenMP "
                    "application.",
    )
    parser.add_argument("stdin", help="command script file, or '-' for stdin")
    parser.add_argument("stdout", help="tool output file, or '-' for stdout")
    parser.add_argument("timefile", help="internal-timings file, or '-' for stdout")
    parser.add_argument("target", choices=sorted(ALL_APPS),
                        help="target application")
    parser.add_argument("--cpus", type=int, default=4,
                        help="MPI processes / OpenMP threads (default 4)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="workload scale factor (default 0.1)")
    parser.add_argument("--input", metavar="DECK",
                        help="application input deck (key = value; the "
                             "app's native iteration key sets the scale, "
                             "ncpus overrides --cpus)")
    parser.add_argument("--machine", default="power3-sp",
                        help="machine preset (default power3-sp)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.stdin == "-":
        script = sys.stdin.read()
    else:
        with open(args.stdin, "r", encoding="utf-8") as fh:
            script = fh.read()

    app = get_app(args.target)
    scale = args.scale
    n_cpus = args.cpus
    if args.input:
        deck = InputDeck.load(args.input)
        scale = deck_scale(app, deck, default_scale=args.scale)
        n_cpus = deck.get_int("ncpus", args.cpus)
    env = Environment()
    cluster = Cluster(env, get_machine(args.machine), seed=args.seed)
    exe = app.build_exe(False)
    program = app.make_program(n_cpus, scale)
    if app.kind == "mpi":
        job = MpiJob(env, cluster, exe, n_cpus, program, start_suspended=True)
    else:
        job = OmpJob(env, cluster, exe, n_cpus, program, start_suspended=True)

    tool = DynProf(
        env, cluster, job,
        file_contents={"@targets": "\n".join(app.dynamic_targets)},
    )
    session = tool.run_script(script)
    env.run(until=session)
    if tool.state == "detached" or tool.state == "running":
        env.run(until=job.completion())
    env.run()

    body = "\n".join(tool.output) + "\n"
    if app.kind == "mpi":
        times = [p.value for p in job.procs]
    else:
        times = [job.proc.value]
    body += (
        f"\napplication main computation: max {max(times):.3f}s over "
        f"{len(times)} process(es)\n"
        f"trace: {job.trace.raw_record_count:,} records, "
        f"{job.trace.size_bytes / 1e6:.2f} MB\n"
    )
    if tool.create_and_instrument_time is not None:
        body += (
            f"time to create and instrument: "
            f"{tool.create_and_instrument_time:.2f}s\n"
        )

    if args.stdout == "-":
        sys.stdout.write(body)
    else:
        with open(args.stdout, "w", encoding="utf-8") as fh:
            fh.write(body)
    timetext = tool.timefile.render()
    if args.timefile == "-":
        sys.stdout.write(timetext)
    else:
        with open(args.timefile, "w", encoding="utf-8") as fh:
            fh.write(timetext)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
