"""Ephemeral instrumentation — the sampling/profiling hybrid of
Traub et al. [15] that the paper's background section describes:

    "These combined approaches use statistical sampling to determine
    parts of the code that should be monitored more closely.  This
    hybrid model dynamically activates detailed instrumentation for
    those important regions to get performance snapshots."

:class:`EphemeralProfiler` drives a running dynprof session through the
two phases:

1. **Sampling** — a SIGPROF-style profiler attaches to every target
   task for a bounded window, charging a small per-sample interrupt
   cost, and ranks functions by observed time share.  (The simulated
   sampler reads the executor's per-function time accumulation — the
   zero-variance limit a real statistical sampler converges to.)
2. **Snapshot** — detailed VT entry/exit probes are dynamically
   inserted into the top-ranked functions only, kept for a measurement
   window, and removed again.  Complete profiles of the hot code, at a
   tiny fraction of Full instrumentation's cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Sequence, Tuple

from .tool import DynProf, DynProfError

__all__ = ["EphemeralProfiler", "SamplingReport"]


@dataclass
class SamplingReport:
    """Outcome of one sampling phase."""

    duration: float
    interval: float
    samples_taken: int
    #: function -> observed seconds, summed over all tasks.
    time_by_function: Dict[str, float] = field(default_factory=dict)

    def ranked(self) -> List[Tuple[str, float]]:
        """(function, share) sorted by time share, descending."""
        total = sum(self.time_by_function.values())
        if total <= 0:
            return []
        return sorted(
            ((name, t / total) for name, t in self.time_by_function.items()),
            key=lambda item: -item[1],
        )

    def top(self, k: int) -> List[str]:
        return [name for name, _share in self.ranked()[:k]]


class EphemeralProfiler:
    """Sampling-guided temporary instrumentation over a DynProf session."""

    #: Target-side cost of one sampling interrupt (signal + unwind).
    SAMPLE_COST = 5e-6

    def __init__(self, tool: DynProf) -> None:
        self.tool = tool
        self.reports: List[SamplingReport] = []

    # -- phase 1: sampling ----------------------------------------------------

    def sample(self, duration: float, interval: float = 0.01) -> Generator:
        """Sample every target for ``duration`` seconds; returns the
        :class:`SamplingReport`.  Runs inside the tool's process."""
        if self.tool.state != "running":
            raise DynProfError(f"sampling in state {self.tool.state}")
        if duration <= 0 or interval <= 0:
            raise ValueError("duration and interval must be positive")
        env = self.tool.env
        tasks = list(self.tool.job.tasks)
        baselines = {}
        for task in tasks:
            if task.sample_accum is None:
                task.sample_accum = {}
            baselines[task] = dict(task.sample_accum)

        samples = 0
        elapsed = 0.0
        while elapsed < duration:
            yield env.timeout(interval)
            elapsed += interval
            samples += 1
            for task in tasks:
                # The profiling interrupt perturbs the target slightly.
                task.charge(self.SAMPLE_COST)

        merged: Dict[str, float] = {}
        for task in tasks:
            accum = task.sample_accum or {}
            base = baselines[task]
            for name, t in accum.items():
                delta = t - base.get(name, 0.0)
                if delta > 0:
                    merged[name] = merged.get(name, 0.0) + delta
            task.sample_accum = None  # detach the sampler

        report = SamplingReport(
            duration=duration,
            interval=interval,
            samples_taken=samples,
            time_by_function=merged,
        )
        self.reports.append(report)
        return report

    # -- phase 2: snapshot ---------------------------------------------------------

    def snapshot(self, functions: Sequence[str], window: float) -> Generator:
        """Insert detailed probes on ``functions``, hold for ``window``
        seconds of target execution, then remove them."""
        if not functions:
            raise ValueError("snapshot needs at least one function")
        if window <= 0:
            raise ValueError("window must be positive")
        tool = self.tool
        yield from tool._suspend_patch_resume(install=list(functions), remove=())
        yield tool.env.timeout(window)
        yield from tool._suspend_patch_resume(install=(), remove=list(functions))

    # -- the full hybrid -------------------------------------------------------------

    def run(
        self,
        sample_duration: float,
        snapshot_window: float,
        top_k: int = 3,
        interval: float = 0.01,
    ) -> Generator:
        """Sample, pick the top-k functions, snapshot them.  Returns
        (report, snapshotted functions)."""
        report = yield from self.sample(sample_duration, interval)
        targets = report.top(top_k)
        if targets:
            yield from self.snapshot(targets, snapshot_window)
        return report, targets
