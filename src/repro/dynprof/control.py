"""Dynamic control of instrumentation — the monitoring tool of Figure 2.

With dynamic *control*, the application is fully statically instrumented
and a monitoring tool periodically reconfigures the instrumentation
library at safe points: the tool sets a breakpoint on
``configuration_break`` (called by rank 0 inside ``configuration_sync``
/ ``VT_confsync``); when the application halts there, the user edits the
configuration through the tool's GUI, and the tool resumes the
application, which broadcasts and applies the new table.

:class:`DynamicControlMonitor` is that tool, headless: queued
configuration changes stand in for GUI edits, and ``hold_time`` models
the human think time the paper identifies as the critical-path
component ("the update time will be limited by user interactions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional, Union

from ..jobs import MpiJob, OmpJob
from ..vt import VTConfig

__all__ = ["DynamicControlMonitor", "BreakpointVisit"]


@dataclass
class BreakpointVisit:
    """One halt of the application at configuration_break."""

    time: float
    epoch: int
    applied: Optional[VTConfig] = None
    hold_time: float = 0.0


@dataclass
class _PendingChange:
    config: VTConfig
    hold_time: float


class DynamicControlMonitor:
    """Headless monitoring tool driving VT_confsync reconfiguration."""

    def __init__(self, job: Union[MpiJob, OmpJob]) -> None:
        self.job = job
        self._pending: List[_PendingChange] = []
        self.visits: List[BreakpointVisit] = []
        self._armed = False

    # -- breakpoint management -----------------------------------------------

    def set_breakpoint(self) -> None:
        """Arm the configuration_break breakpoint on rank 0's VT."""
        vt = self._rank0_vt()
        vt.break_hook = self._on_break
        self._armed = True

    def clear_breakpoint(self) -> None:
        vt = self._rank0_vt()
        vt.break_hook = None
        self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    def _rank0_vt(self):
        if isinstance(self.job, OmpJob):
            vt = self.job.vt
        else:
            vt = self.job.vt_states[0]
        if vt is None:
            raise RuntimeError("target job has no VT library linked")
        return vt

    # -- user actions -------------------------------------------------------------

    def queue_config_change(self, config: VTConfig, hold_time: float = 0.0) -> None:
        """Queue a configuration to hand over at the next breakpoint.

        ``hold_time`` is the simulated user-interaction time while the
        application is halted at the breakpoint.
        """
        if hold_time < 0:
            raise ValueError("hold_time must be non-negative")
        self._pending.append(_PendingChange(config, hold_time))

    # -- the hook (runs in rank 0's context) ------------------------------------------

    def _on_break(self, pctx) -> Generator:
        vt = pctx.image.vt
        visit = BreakpointVisit(time=pctx.env.now, epoch=vt.epoch)
        self.visits.append(visit)
        if not self._pending:
            return None
        change = self._pending.pop(0)
        visit.hold_time = change.hold_time
        if change.hold_time > 0:
            # The application sits halted while the user edits the config.
            yield pctx.env.timeout(change.hold_time)
        visit.applied = change.config
        return change.config

    def __repr__(self) -> str:
        return (
            f"<DynamicControlMonitor armed={self._armed} "
            f"pending={len(self._pending)} visits={len(self.visits)}>"
        )
