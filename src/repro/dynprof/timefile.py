"""The dynprof timefile: internal timings of the instrumenter itself.

"dynprof is instrumented to collect detailed timings about its internal
operations, and these timings are written to a timefile" (Section 3.3).
These timings are the raw data behind Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Timefile", "TimedPhase"]


@dataclass
class TimedPhase:
    """One internal operation of the tool."""

    name: str
    start: float
    end: Optional[float] = None
    detail: str = ""

    @property
    def elapsed(self) -> float:
        if self.end is None:
            raise ValueError(f"phase {self.name!r} still open")
        return self.end - self.start


class Timefile:
    """Ordered record of the tool's internal phases."""

    def __init__(self) -> None:
        self.phases: List[TimedPhase] = []
        self._open: Dict[str, TimedPhase] = {}

    def begin(self, name: str, now: float, detail: str = "") -> TimedPhase:
        if name in self._open:
            raise ValueError(f"phase {name!r} already open")
        phase = TimedPhase(name, now, detail=detail)
        self._open[name] = phase
        self.phases.append(phase)
        return phase

    def end(self, name: str, now: float) -> TimedPhase:
        phase = self._open.pop(name, None)
        if phase is None:
            raise ValueError(f"phase {name!r} is not open")
        phase.end = now
        return phase

    def elapsed(self, name: str) -> float:
        """Total elapsed time over all completed phases called ``name``."""
        return sum(p.elapsed for p in self.phases if p.name == name and p.end is not None)

    def total(self, *names: str) -> float:
        """Combined elapsed time of several phase names."""
        return sum(self.elapsed(n) for n in names)

    def render(self) -> str:
        """The timefile text, one line per phase."""
        lines = ["# dynprof internal timings (seconds)"]
        for p in self.phases:
            status = f"{p.elapsed:.6f}" if p.end is not None else "OPEN"
            detail = f"  # {p.detail}" if p.detail else ""
            lines.append(f"{p.name:<28s} {p.start:>12.6f} {status:>12s}{detail}")
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render())
