"""repro.dynprof — the paper's contribution: dynamic instrumentation and
dynamic control of instrumentation for MPI/OpenMP applications.

* :class:`DynProf` — the DPCL-based dynamic instrumenter (Section 3).
* :mod:`~repro.dynprof.commands` — the Table 1 command language.
* :mod:`~repro.dynprof.bootstrap` — the Figure 6 MPI_Init/VT_init
  bootstrap snippets.
* :mod:`~repro.dynprof.policies` — the Table 3 instrumentation policies
  and the Figure 7 cell runner.
* :class:`DynamicControlMonitor` — the Figure 2 monitoring tool for
  dynamic control of instrumentation.
"""

from .bootstrap import (
    INIT_CALLBACK_TAG,
    SPIN_VARIABLE,
    bootstrap_anchor,
    mpi_init_bootstrap,
    vt_init_bootstrap,
)
from .commands import Command, CommandError, HELP_TEXT, parse_command, parse_script
from .control import BreakpointVisit, DynamicControlMonitor
from .ephemeral import EphemeralProfiler, SamplingReport
from .policies import (POLICIES, PolicyResult, policy_description,
                       run_policy, run_policy_job)
from .timefile import Timefile, TimedPhase
from .tool import DynProf, DynProfError

__all__ = [
    "DynProf",
    "DynProfError",
    "Command",
    "CommandError",
    "HELP_TEXT",
    "parse_command",
    "parse_script",
    "Timefile",
    "TimedPhase",
    "POLICIES",
    "PolicyResult",
    "policy_description",
    "run_policy",
    "run_policy_job",
    "DynamicControlMonitor",
    "BreakpointVisit",
    "EphemeralProfiler",
    "SamplingReport",
    "mpi_init_bootstrap",
    "vt_init_bootstrap",
    "bootstrap_anchor",
    "SPIN_VARIABLE",
    "INIT_CALLBACK_TAG",
]
