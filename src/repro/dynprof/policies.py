"""The instrumentation policies of Table 3 and their runner.

=========  ==================================================================
Policy     Description
=========  ==================================================================
Full       All functions are statically instrumented.
Full-Off   All functions are statically instrumented but disabled using the
           configuration file.
Subset     All functions are statically instrumented with only an important
           subset left active.
None       No subroutine instrumentation is inserted.
Dynamic    The dynprof tool is used to dynamically instrument the same
           functions used by Subset.
=========  ==================================================================

``run_policy`` executes one (application, policy, CPU-count) cell of
Figure 7 and returns the measured times plus trace accounting.  As in
the paper, the reported program time excludes the time used to create
and insert the instrumentation (the target is suspended during
insertion), but *includes* the overhead incurred by the probes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..apps import AppSpec
from ..cluster import Cluster, MachineSpec, POWER3_SP
from ..faults import FaultInjector, FaultPlan
from ..jobs import MpiJob, OmpJob
from ..obs.timeseries import MetricsSampler
from ..simt import Environment
from ..vt import VTConfig
from .tool import DynProf

__all__ = ["POLICIES", "PolicyResult", "run_policy", "run_policy_job",
           "policy_description"]

POLICIES = ("Full", "Full-Off", "Subset", "None", "Dynamic")

_DESCRIPTIONS = {
    "Full": "All functions are statically instrumented.",
    "Full-Off": "All functions are statically instrumented but disabled "
                "using the configuration file.",
    "Subset": "All functions are statically instrumented with only an "
              "important subset left active.",
    "None": "No subroutine instrumentation is inserted.",
    "Dynamic": "The dynprof tool is used to dynamically instrument the "
               "same functions used by Subset.",
}


def policy_description(policy: str) -> str:
    """The Table 3 description of one instrumentation policy."""
    return _DESCRIPTIONS[policy]


@dataclass
class PolicyResult:
    """One cell of Figure 7 (plus diagnostics)."""

    app: str
    policy: str
    n_cpus: int
    scale: float
    #: Max over ranks of the main-computation elapsed time (the paper's
    #: reported program time).
    time: float
    per_rank_times: List[float] = field(default_factory=list)
    trace_records: int = 0
    trace_bytes: int = 0
    #: Time dynprof spent creating + instrumenting (Figure 9); None for
    #: the static policies.
    instrument_time: Optional[float] = None
    #: Fault-injection report (injected counts, quarantined ranks,
    #: coverage); None for fault-free runs.
    faults: Optional[Dict[str, Any]] = None

    def __repr__(self) -> str:
        return (
            f"<{self.app}/{self.policy}@{self.n_cpus}cpu "
            f"time={self.time:.2f}s records={self.trace_records}>"
        )


def _policy_build(app: AppSpec, policy: str):
    """(instrument_static, vt_config) for a Table 3 policy."""
    if policy == "Full":
        return True, VTConfig.all_on()
    if policy == "Full-Off":
        return True, VTConfig.all_off()
    if policy == "Subset":
        if not app.has_subset_policy:
            raise ValueError(f"{app.name} has no Subset version (see paper, 4.3)")
        return True, VTConfig.subset(app.subset)
    if policy == "None":
        return False, VTConfig.all_on()
    if policy == "Dynamic":
        # The Dynamic target binary carries no static subroutine probes.
        return False, VTConfig.all_on()
    raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")


def _probe_stats_provider(job):
    """A cumulative per-probe cost reader for the metrics sampler.

    Returns a callable yielding ``(name, pairs, inclusive_time,
    overhead_time)`` rows aggregated over the job's live VT states.
    Each recorded (begin, end) pair of an active probe charges
    ``2 × vt_active_event_cost`` of instrumentation time to its
    function — the direct trampoline/probe perturbation the paper's
    overhead numbers measure (buffer-flush and patch time are tracked
    separately as obs spans).
    """

    def probe_stats():
        totals: Dict[str, List[float]] = {}
        # MPI jobs carry one VT state per rank; OpenMP jobs a single
        # process-wide one (same duality the fault injector handles).
        vt_states = getattr(job, "vt_states", None)
        if vt_states is None:
            single = getattr(job, "vt", None)
            vt_states = [single] if single is not None else []
        for vt in vt_states:
            if vt is None:
                continue
            pair_cost = 2.0 * vt.spec.vt_active_event_cost
            for fid, st in vt.stats.items():
                name = vt.registry.name_of(fid)
                row = totals.get(name)
                if row is None:
                    row = totals[name] = [0.0, 0.0, 0.0]
                row[0] += st.count
                row[1] += st.inclusive_time
                row[2] += st.count * pair_cost
        return [
            (name, int(row[0]), row[1], row[2])
            for name, row in sorted(totals.items())
        ]

    return probe_stats


def run_policy(
    app: AppSpec,
    policy: str,
    n_cpus: int,
    scale: float = 1.0,
    machine: MachineSpec = POWER3_SP,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
) -> PolicyResult:
    """Run one (app, policy, CPUs) cell and collect the measurements."""
    result, _job = run_policy_job(
        app, policy, n_cpus, scale=scale, machine=machine, seed=seed,
        faults=faults,
    )
    return result


def run_policy_job(
    app: AppSpec,
    policy: str,
    n_cpus: int,
    scale: float = 1.0,
    machine: MachineSpec = POWER3_SP,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
):
    """Like :func:`run_policy`, but also returns the finished job.

    The job exposes artifacts the summary :class:`PolicyResult` cannot
    carry through the cache (its payload is the JSON ``asdict`` form):
    most importantly ``job.trace``, the merged postmortem
    :class:`~repro.vt.buffer.TraceFile` the compaction experiments
    compress and cross-check.  Returns ``(result, job)``.
    """
    if n_cpus not in app.cpu_counts and n_cpus > max(app.cpu_counts):
        raise ValueError(f"{app.name} was not evaluated beyond {max(app.cpu_counts)} CPUs")
    env = Environment()
    cluster = Cluster(env, machine, seed=seed)
    injector = FaultInjector.install(faults, cluster)
    instrument_static, vt_config = _policy_build(app, policy)
    exe = app.build_exe(instrument_static)
    program = app.make_program(n_cpus, scale)

    if app.kind == "mpi":
        job = MpiJob(
            env, cluster, exe, n_cpus, program,
            vt_config=vt_config,
            start_suspended=(policy == "Dynamic"),
        )
    else:
        job = OmpJob(
            env, cluster, exe, n_cpus, program,
            vt_config=vt_config,
            start_suspended=(policy == "Dynamic"),
        )

    # Sampled telemetry: a no-op (None — zero events scheduled) unless
    # obs.timeseries sampling is enabled for this run.  The sampler
    # only reads simulation state, so payloads are identical either
    # way; install it before the run so the first window starts at 0.
    sampler = MetricsSampler.install(env, probe_stats=_probe_stats_provider(job))

    instrument_time: Optional[float] = None
    fault_report: Optional[Dict[str, Any]] = None
    if policy == "Dynamic":
        # Scripted dynprof session, exactly like the paper's batch runs:
        # instrument before the main computation via insert-file + start.
        tool = DynProf(
            env, cluster, job,
            file_contents={"targets.txt": "\n".join(app.dynamic_targets)},
        )
        tool_proc = tool.run_script("insert-file targets.txt\nstart\nquit\n")
        env.run(until=tool_proc)
        instrument_time = tool.create_and_instrument_time
        env.run(until=job.completion())
        if injector is not None:
            fault_report = tool.fault_report()
    else:
        job.start()
        env.run(until=job.completion())
    if sampler is not None:
        sampler.stop()  # withdraw the pending wakeup so the queue can drain
    env.run()  # drain (finalize flushes, daemons idle)
    if sampler is not None:
        sampler.finish()  # terminal sample: series telescope to the snapshot
    if injector is not None and fault_report is None:
        fault_report = {"injected": injector.summary()}

    if app.kind == "mpi":
        per_rank = [p.value for p in job.procs]
    else:
        per_rank = [job.proc.value]

    result = PolicyResult(
        app=app.name,
        policy=policy,
        n_cpus=n_cpus,
        scale=scale,
        time=max(per_rank),
        per_rank_times=per_rank,
        trace_records=job.trace.raw_record_count,
        trace_bytes=job.trace.size_bytes,
        instrument_time=instrument_time,
        faults=fault_report,
    )
    return result, job
