"""The dynprof command language (Table 1).

=============  ========  =====================================================
Command        Shortcut  Description
=============  ========  =====================================================
help           h         Displays a help message
insert ...     i         Inserts instrumentation into one or more functions
remove ...     r         Removes instrumentation from one or more functions
insert-file .. if        Inserts instrumentation into all functions listed in
                         the provided file or files
remove-file .. rf        Removes instrumentation from all functions listed in
                         the provided file or files
start          s         Starts execution of the target application
quit           q         Detaches the instrumenter from the application
wait           w         Causes the tool to wait before executing the next
                         command
=============  ========  =====================================================

Commands can be scripted: "a user can prepare a text file that includes
commands, and direct this file into dynprof" (Section 3.3) — which is
how the paper's batch-queue experiments were run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["Command", "CommandError", "parse_command", "parse_script", "HELP_TEXT"]

HELP_TEXT = """\
dynprof commands:
  help (h)                 Displays a help message
  insert (i) FN...         Inserts instrumentation into one or more functions
  remove (r) FN...         Removes instrumentation from one or more functions
  insert-file (if) FILE... Inserts instrumentation into all of the functions
                           listed in the provided file or files
  remove-file (rf) FILE... Removes instrumentation from all of the functions
                           listed in the provided file or files
  start (s)                Starts execution of the target application
  quit (q)                 Detaches the instrumenter from the application
  wait (w) [SECONDS]       Causes the tool to wait before executing the next
                           command (default 1 second)
"""


class CommandError(ValueError):
    """Malformed dynprof command."""


@dataclass(frozen=True)
class Command:
    """One parsed dynprof command."""

    verb: str                       # canonical verb (long form)
    args: tuple = ()
    #: wait duration, for the wait command.
    seconds: float = 1.0

    def __str__(self) -> str:
        parts = [self.verb, *self.args]
        if self.verb == "wait":
            parts.append(str(self.seconds))
        return " ".join(str(p) for p in parts)


_ALIASES: Dict[str, str] = {
    "help": "help", "h": "help",
    "insert": "insert", "i": "insert",
    "remove": "remove", "r": "remove",
    "insert-file": "insert-file", "if": "insert-file",
    "remove-file": "remove-file", "rf": "remove-file",
    "start": "start", "s": "start",
    "quit": "quit", "q": "quit",
    "wait": "wait", "w": "wait",
}

_NEEDS_ARGS = {"insert", "remove", "insert-file", "remove-file"}
_NO_ARGS = {"help", "start", "quit"}


def parse_command(line: str) -> Optional[Command]:
    """Parse one command line; returns None for blanks/comments."""
    text = line.split("#", 1)[0].strip()
    if not text:
        return None
    parts = text.split()
    verb = _ALIASES.get(parts[0].lower())
    if verb is None:
        raise CommandError(f"unknown command {parts[0]!r} (try 'help')")
    args = tuple(parts[1:])
    if verb in _NEEDS_ARGS and not args:
        raise CommandError(f"{verb} needs at least one argument")
    if verb in _NO_ARGS and args:
        raise CommandError(f"{verb} takes no arguments")
    if verb == "wait":
        if len(args) > 1:
            raise CommandError("wait takes at most one duration argument")
        seconds = 1.0
        if args:
            try:
                seconds = float(args[0])
            except ValueError:
                raise CommandError(f"bad wait duration {args[0]!r}") from None
            if seconds < 0:
                raise CommandError("wait duration must be non-negative")
        return Command("wait", (), seconds=seconds)
    return Command(verb, args)


def parse_script(text: str) -> List[Command]:
    """Parse a command script (one command per line)."""
    commands = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        try:
            cmd = parse_command(line)
        except CommandError as e:
            raise CommandError(f"line {line_no}: {e}") from None
        if cmd is not None:
            commands.append(cmd)
    return commands
