"""The dynprof bootstrap snippets (Figure 6, Section 3.4).

MPI applications must not receive VT instrumentation until every rank
has completed MPI_Init (Vampirtrace initialises its own structures
inside the MPI_Init wrapper).  dynprof therefore patches the **end of
MPI_Init**, immediately upon loading the application, with:

.. code-block:: c

    MPI_Barrier(MPI_COMM_WORLD);   /* sync after everyone's MPI_Init   */
    DPCL_callback();               /* "it is safe to instrument now"   */
    DYNVT_spin();                  /* hold still until the tool is done */
    MPI_Barrier(MPI_COMM_WORLD);   /* re-sync: spin release is skewed  */

For OpenMP applications the Guide compiler plants ``VT_init`` at the top
of main — guaranteed single-threaded — so the patched code needs only
the callback and the spin, no barriers.
"""

from __future__ import annotations

from ..program import CallFunc, Const, Sequence, Snippet, SpinWait

__all__ = [
    "SPIN_VARIABLE",
    "INIT_CALLBACK_TAG",
    "mpi_init_bootstrap",
    "degraded_mpi_bootstrap",
    "vt_init_bootstrap",
    "bootstrap_anchor",
]

#: The target-process variable the spin loop watches; the instrumenter
#: pokes it (through the daemon) once deferred instrumentation is in.
SPIN_VARIABLE = "DYNVT_go"

#: Callback tag signalling "MPI/VT initialisation complete on this rank".
INIT_CALLBACK_TAG = "dynprof:init-done"


def mpi_init_bootstrap() -> Snippet:
    """The snippet patched into the exit of MPI_Init (Figure 6)."""
    return Sequence([
        CallFunc("MPI_Barrier"),
        CallFunc("DPCL_callback", [Const(INIT_CALLBACK_TAG)]),
        SpinWait(SPIN_VARIABLE),
        CallFunc("MPI_Barrier"),
    ])


def degraded_mpi_bootstrap() -> Snippet:
    """Barrier-free MPI bootstrap used when a fault plan is armed.

    Quarantining a rank while the survivors run the two-barrier Figure 6
    bootstrap would hang MPI_Barrier (B+2 barrier calls on survivors vs
    B on the quarantined rank).  Under fault injection *every* rank gets
    this barrier-free variant, so partial probe coverage can never turn
    into a collective mismatch.  The cost is the re-synchronisation the
    second barrier provided: released ranks enter main computation with
    whatever skew the per-rank spin releases had.
    """
    return Sequence([
        CallFunc("DPCL_callback", [Const(INIT_CALLBACK_TAG)]),
        SpinWait(SPIN_VARIABLE),
    ])


def vt_init_bootstrap() -> Snippet:
    """The snippet patched into the exit of VT_init (OpenMP apps).

    No barriers: VT_init runs in a guaranteed single-threaded region at
    the beginning of main.
    """
    return Sequence([
        CallFunc("DPCL_callback", [Const(INIT_CALLBACK_TAG)]),
        SpinWait(SPIN_VARIABLE),
    ])


def bootstrap_anchor(kind: str) -> str:
    """The function whose exit carries the bootstrap for an app kind."""
    if kind == "mpi":
        return "MPI_Init"
    if kind == "omp":
        return "VT_init"
    raise ValueError(f"unknown application kind {kind!r}")
