"""dynprof — the DPCL-based dynamic instrumenter (Section 3).

The tool spawns a target application (through the poe analog), attaches
to it via DPCL, and inserts Vampirtrace subroutine entry/exit probes at
run time.  Invocation mirrors the paper's::

    dynprof <stdin> <stdout> <timefile> <target> <params> <poe params>

Lifecycle (Section 3.3/3.4):

1. **spawn** — the target is created but suspended at its first
   instruction; the bootstrap snippet (Figure 6) is patched into the
   exit of MPI_Init (or VT_init for OpenMP) immediately upon loading.
2. **pre-start commands** — insert/remove requests are *queued*: it is
   unsafe to insert VT probes before MPI_Init/VT_init completes.
3. **start** — the application runs to the bootstrap: ranks barrier,
   send the DPCL callback, and spin.  Once every callback has arrived
   the tool installs the queued instrumentation into each stopped
   process image, registers the function names with VT, releases the
   spins, and the ranks re-synchronise and enter main computation.
4. **mid-run insert/remove** — suspend all (blocking), patch, resume;
   the suspension shows up as timeline inactivity.
5. **quit** — detach; active probes remain in the application.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence, Tuple, Union

from ..cluster import Cluster, Node, Task
from ..dpcl import DpclClient, DpclError, RequestPolicy
from ..jobs import MpiJob, OmpJob
from ..obs import get as _obs_get
from ..obs.trace import TOOL_PID, get as _trace_get
from ..program import ENTRY, EXIT, ProbeHandle
from ..simt import Environment, Process
from ..vt import BEGIN, END, VTProbeSnippet
from .bootstrap import (
    INIT_CALLBACK_TAG,
    SPIN_VARIABLE,
    bootstrap_anchor,
    degraded_mpi_bootstrap,
    mpi_init_bootstrap,
    vt_init_bootstrap,
)
from .commands import Command, HELP_TEXT, parse_script
from .timefile import Timefile

__all__ = ["DynProf", "DynProfError", "DEGRADED_POLICY"]

#: Request policy armed automatically when a fault plan is installed:
#: generous per-wait timeouts (well above the largest per-node handler
#: cost at the paper's scales) with two resend waves.
DEGRADED_POLICY = RequestPolicy(
    timeout=10.0, max_retries=2, backoff=0.5, backoff_multiplier=2.0
)

#: Seconds (simulated) to wait for init callbacks past the last one
#: before quarantining the silent ranks.
CALLBACK_TIMEOUT = 10.0


class DynProfError(RuntimeError):
    """Tool-level usage errors (bad state transitions etc.)."""


class DynProf:
    """The dynamic instrumenter, driving one target job.

    Parameters
    ----------
    job:
        The target application job, which must have been constructed
        with ``start_suspended=True`` (dynprof spawns then instruments;
        attaching to an already-running job is future work, exactly as
        in the paper).
    file_contents:
        In-memory provider for ``insert-file``/``remove-file`` command
        arguments: maps file name -> text with one function glob per
        line.
    """

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        job: Union[MpiJob, OmpJob],
        *,
        user: str = "user",
        tool_node: Optional[Node] = None,
        file_contents: Optional[Dict[str, str]] = None,
        attach: bool = False,
        policy: Optional[RequestPolicy] = None,
    ) -> None:
        if not attach and not job.start_suspended:
            raise DynProfError(
                "dynprof requires a job built with start_suspended=True "
                "(spawn-then-instrument), or attach=True to attach to an "
                "already-running application"
            )
        self.attach_mode = attach
        self.env = env
        self.cluster = cluster
        self.job = job
        self.kind = "omp" if isinstance(job, OmpJob) else "mpi"
        self.spec = cluster.spec
        node = tool_node if tool_node is not None else cluster.node(0)
        #: The tool runs on an interactive node and needs no compute core.
        self.task = Task(env, node, f"dynprof:{job.exe.name}", self.spec, bind_core=False)
        #: Degraded operation: armed whenever a fault injector is bound
        #: to the cluster.  Requests get timeouts/retries, the bootstrap
        #: goes barrier-free, and un-instrumentable ranks are
        #: quarantined instead of killing the session.
        self.degraded = getattr(cluster, "faults", None) is not None
        if policy is None and self.degraded:
            policy = DEGRADED_POLICY
        self.client = DpclClient(env, cluster, node, job.daemon_host, user=user,
                                 policy=policy)
        self.timefile = Timefile()
        self.output: List[str] = []
        #: process name -> reason it was excluded from instrumentation.
        self.quarantined: Dict[str, str] = {}

        #: Function names queued before start (acted on after the
        #: bootstrap callback confirms it is safe, Section 3.4).
        self._queued: List[str] = []
        #: (process, function) -> installed probe handles.
        self._handles: Dict[Tuple[str, str], List[ProbeHandle]] = {}
        self.state = "created"
        self._file_contents = dict(file_contents or {})
        self._obs = _obs_get()
        self._trace = _trace_get()
        if self._trace.enabled:
            self._trace.track(TOOL_PID, 0, "dynprof")
        #: Seconds from session start until the app entered main
        #: computation (Figure 9's "time to create and instrument").
        self.create_and_instrument_time: Optional[float] = None

    # -- helpers ------------------------------------------------------------------

    @property
    def process_names(self) -> List[str]:
        return [t.name for t in self.job.tasks]

    @property
    def active_processes(self) -> List[str]:
        """Ranks still under tool control (not quarantined)."""
        if not self.quarantined:
            return self.process_names
        return [n for n in self.process_names if n not in self.quarantined]

    def _emit(self, text: str) -> None:
        self.output.append(text)

    def _now(self) -> float:
        return self.env.now

    def _quarantine(self, name: str, reason: str) -> None:
        if name in self.quarantined:
            return
        self.quarantined[name] = reason
        self._emit(f"quarantined {name}: {reason}")
        if self._obs.enabled:
            self._obs.inc("dynprof.quarantined_ranks")

    def _quarantine_node(self, node_index: int, reason: str) -> None:
        for task in self.job.tasks:
            if task.node.index == node_index:
                self._quarantine(task.name, reason)

    def _controllable(self) -> List[str]:
        """Attached ranks the tool may still send requests about."""
        if not self.quarantined:
            return self.client.attached_processes
        return [
            n for n in self.client.attached_processes
            if n not in self.quarantined
        ]

    def _direct_release(self, name: str) -> None:
        """Launcher-side fallback for a rank DPCL can no longer reach:
        poe still holds the process handle, so the tool can resume a
        spawn-suspended rank and poke its spin flag directly, letting
        the application run (uninstrumented) instead of hanging."""
        target = self.job.daemon_host.lookup(name)
        if target is None:
            return
        task, image = target
        if task.is_suspend_requested:
            task.resume()
        # Pre-set (or release) the spin flag; a rank that never got the
        # bootstrap simply never reads it.
        image.write_variable(SPIN_VARIABLE, 1)

    def fault_report(self) -> Dict[str, object]:
        """Partial-coverage summary for a faulted session."""
        total = len(self.process_names)
        names = self.process_names
        injector = getattr(self.cluster, "faults", None)
        return {
            "degraded": self.degraded,
            "quarantined": dict(self.quarantined),
            "quarantined_ranks": sorted(
                names.index(n) for n in self.quarantined
            ),
            "coverage": (total - len(self.quarantined)) / total if total else 1.0,
            "injected": injector.summary() if injector is not None else {},
            "client_retries": self.client.retries,
            "stale_acks": self.client.stale_acks,
        }

    # -- session driver --------------------------------------------------------------

    def run_script(self, script: str) -> Process:
        """Start the tool process executing a command script."""
        return self.run_commands(parse_script(script))

    def run_commands(self, commands: Sequence[Command]) -> Process:
        return self.task.start(self.session(commands), name=self.task.name)

    def session(self, commands: Sequence[Command]) -> Generator:
        """The tool's main generator: spawn (or attach), then obey the
        commands."""
        if self.attach_mode:
            yield from self._attach_running()
        else:
            yield from self._spawn()
        for command in commands:
            yield from self.execute(command)
            if self.state == "detached":
                break
        return self

    def execute(self, command: Command) -> Generator:
        handler = {
            "help": self._cmd_help,
            "insert": self._cmd_insert,
            "remove": self._cmd_remove,
            "insert-file": self._cmd_insert_file,
            "remove-file": self._cmd_remove_file,
            "start": self._cmd_start,
            "quit": self._cmd_quit,
            "wait": self._cmd_wait,
        }[command.verb]
        yield from handler(command)

    # -- phase 1: spawn + bootstrap -----------------------------------------------------

    def _spawn(self) -> Generator:
        """Create the target (suspended) and patch in the bootstrap."""
        if self.state != "created":
            raise DynProfError(f"spawn in state {self.state}")
        tf = self.timefile
        tf.begin("create", self._now(), detail=f"{self.job.exe.name}")
        # poe: job setup, then per-process spawns and per-node image loads.
        yield self.env.timeout(self.spec.poe_job_setup_cost)
        n_procs = len(self.job.tasks)
        yield self.env.timeout(n_procs * self.spec.poe_spawn_cost)
        nodes = {t.node.index: t.node for t in self.job.tasks}
        yield self.env.timeout(len(nodes) * self.spec.poe_load_image_cost)
        self.job.start()  # suspended at first instruction
        tf.end("create", self._now())

        tf.begin("connect", self._now())
        locations = {t.name: t.node for t in self.job.tasks}
        if self.degraded:
            _acks, failures = yield from self.client.connect(locations, tolerant=True)
            for idx in sorted(failures):
                self._quarantine_node(idx, "daemon unreachable at connect")
        else:
            yield from self.client.connect(locations)
        tf.end("connect", self._now())

        tf.begin("attach", self._now(), detail=f"{n_procs} processes")
        if self.degraded:
            _names, failures = yield from self.client.attach(
                self.active_processes, tolerant=True
            )
            for idx, ack in sorted(failures.items()):
                self._quarantine_node(idx, f"attach failed: {ack.error}")
        else:
            yield from self.client.attach(self.process_names)
        tf.end("attach", self._now())

        # The bootstrap goes in immediately upon loading (Section 3.4).
        tf.begin("bootstrap", self._now())
        anchor = bootstrap_anchor(self.kind)
        if self.kind != "mpi":
            snippet_factory = vt_init_bootstrap
        elif self.degraded:
            # Barrier-free: a partially-bootstrapped job must not have a
            # barrier-count mismatch between ranks (see bootstrap.py).
            snippet_factory = degraded_mpi_bootstrap
        else:
            snippet_factory = mpi_init_bootstrap
        probes = [
            (name, anchor, EXIT, snippet_factory())
            for name in self.active_processes
        ]
        if self.degraded:
            _results, failures = yield from self.client.install_probes_tolerant(probes)
            for failure in failures:
                self._quarantine(
                    failure["process"],
                    f"bootstrap install failed: {failure['reason']}",
                )
        else:
            yield from self.client.install_probes(probes)
        tf.end("bootstrap", self._now())
        self.state = "spawned"
        self._emit(f"spawned {self.job.exe.name} x{n_procs} (suspended)")

    # -- attach-to-running (the paper's acknowledged missing feature) -------------------

    def _attach_running(self) -> Generator:
        """Attach to an application that is already executing.

        The paper restricted its prototype to spawn-then-instrument but
        "[did] not foresee any difficult issues in extending [the] tool
        to support dynamic attachment" (Section 3.3).  The one real
        constraint carries over: no VT instrumentation may be inserted
        until MPI_Init / VT_init has completed on every process, so the
        attach waits for that before declaring the session live.
        """
        if self.state != "created":
            raise DynProfError(f"attach in state {self.state}")
        if self.kind == "mpi" and not self.job.procs:
            raise DynProfError("cannot attach: the target job is not running")
        if self.kind == "omp" and self.job.proc is None:
            raise DynProfError("cannot attach: the target job is not running")
        tf = self.timefile
        tf.begin("connect", self._now())
        yield from self.client.connect({t.name: t.node for t in self.job.tasks})
        tf.end("connect", self._now())
        tf.begin("attach", self._now(), detail=f"{len(self.job.tasks)} processes")
        yield from self.client.attach(self.process_names)
        tf.end("attach", self._now())
        # Defer until the target's instrumentation library is up.
        tf.begin("await-init", self._now())
        while not self._target_initialized():
            yield self.env.timeout(0.2)
        tf.end("await-init", self._now())
        self.state = "running"
        self._emit(f"attached to running {self.job.exe.name}")

    def _target_initialized(self) -> bool:
        if self.kind == "mpi":
            return self.job.world.all_initialized
        vt = self.job.vt
        return vt is None or vt.initialized

    # -- safe-point patching (the Section 5.1 hybrid) -------------------------------------

    def patch_at_safe_point(
        self,
        insert: Sequence[str] = (),
        remove: Sequence[str] = (),
    ) -> Generator:
        """Insert/remove probes at the application's next VT_confsync.

        The hybrid the paper concludes with: instead of suspending the
        ranks wherever the asynchronous DPCL messages happen to catch
        them (skewed stops that leave residual imbalance), arm the
        ``configuration_break`` breakpoint and patch while rank 0 is
        halted at it.  The remaining ranks are either already blocked in
        the configuration broadcast or soon arrive at it; whatever skew
        the stop causes is absorbed by confsync's own closing barrier,
        so the ranks leave the safe point balanced.

        Returns the simulated time at which the safe point was reached.
        Requires the target to call VT_confsync at its safe points.
        """
        if self.state != "running":
            raise DynProfError(f"safe-point patch in state {self.state}")
        vt0 = self.job.vt_states[0] if self.kind == "mpi" else self.job.vt
        if vt0 is None:
            raise DynProfError("target has no VT library: no confsync safe points")
        if vt0.break_hook is not None:
            raise DynProfError("another monitor already owns the breakpoint")

        from ..simt import Channel

        hit = Channel(self.env, name="safe-point-hit")
        done = self.env.event()

        def hook(pctx):
            hit.put(pctx.env.now)
            yield from pctx.task.blocked_wait(done)
            return None  # no configuration change rides along

        vt0.break_hook = hook
        tf = self.timefile
        tf.begin("safe-point-wait", self._now())
        t_hit = yield hit.get()
        vt0.break_hook = None
        tf.end("safe-point-wait", self._now())

        t_patch0 = self._now()
        tf.begin("safe-point-patch", t_patch0,
                 detail=f"+{len(insert)} -{len(remove)} globs")
        # Rank 0 is parked in the hook; the other ranks are blocked in
        # (or running toward) the confsync broadcast.  The blocking
        # suspend certifies every target has stopped before any image
        # is touched.
        yield from self.client.suspend(self._controllable(), blocking=True)
        try:
            if insert:
                yield from self._install_into_all(list(insert))
            if remove:
                handles = []
                for pname in self.process_names:
                    image = self.client.image_of(pname)
                    for glob in remove:
                        for fi in image.find_functions(glob):
                            handles.extend(self._handles.pop((pname, fi.name), []))
                if handles:
                    n = yield from self.client.remove_probes(handles)
                    if self._obs.enabled:
                        self._obs.inc("dynprof.probe_removes", n)
                    if self._trace.enabled:
                        self._trace.instant(
                            TOOL_PID, 0, "probe.remove", "dynprof",
                            self._now(), args={"probes": n},
                        )
                    self._emit(f"removed {n} probes")
        finally:
            yield from self.client.resume(self._controllable())
            done.succeed()
        tf.end("safe-point-patch", self._now())
        if self._obs.enabled:
            self._obs.inc("dynprof.safe_point_patches")
            self._obs.span("dynprof.patch", self._now() - t_patch0)
        if self._trace.enabled:
            self._trace.complete(
                TOOL_PID, 0, "safe-point patch", "dynprof.patch",
                t_patch0, self._now(),
                args={"insert": len(insert), "remove": len(remove),
                      "safe_point": t_hit},
            )
        self._emit(f"patched at safe point t={t_hit:.3f}s")
        return t_hit

    # -- commands ------------------------------------------------------------------------

    def _cmd_help(self, command: Command) -> Generator:
        self._emit(HELP_TEXT)
        return
        yield  # pragma: no cover

    def _expand_file_args(self, files: Sequence[str]) -> List[str]:
        names: List[str] = []
        for fname in files:
            text = self._file_contents.get(fname)
            if text is None:
                try:
                    with open(fname, "r", encoding="utf-8") as fh:
                        text = fh.read()
                except OSError as e:
                    raise DynProfError(f"cannot read function list {fname!r}: {e}")
            for line in text.splitlines():
                line = line.split("#", 1)[0].strip()
                if line:
                    names.append(line)
        return names

    def _cmd_insert(self, command: Command) -> Generator:
        yield from self._insert(list(command.args))

    def _cmd_insert_file(self, command: Command) -> Generator:
        yield from self._insert(self._expand_file_args(command.args))

    def _cmd_remove(self, command: Command) -> Generator:
        yield from self._remove(list(command.args))

    def _cmd_remove_file(self, command: Command) -> Generator:
        yield from self._remove(self._expand_file_args(command.args))

    def _insert(self, names: List[str]) -> Generator:
        if self.state in ("created",):
            raise DynProfError("insert before spawn")
        if self.state == "spawned":
            # Pre-start: record, act after the init callback (Section 3.4).
            self._queued.extend(names)
            self._emit(f"queued insert: {' '.join(names)}")
            return
        yield from self._suspend_patch_resume(install=names, remove=())

    def _remove(self, names: List[str]) -> Generator:
        if self.state == "spawned":
            remaining = [q for q in self._queued if q not in set(names)]
            self._queued = remaining
            self._emit(f"queued remove: {' '.join(names)}")
            return
        yield from self._suspend_patch_resume(install=(), remove=names)

    def _cmd_start(self, command: Command) -> Generator:
        if self.state != "spawned":
            raise DynProfError(f"start in state {self.state}")
        tf = self.timefile
        tf.begin("start", self._now())
        if self.degraded:
            _n, failures = yield from self.client.resume(
                self.active_processes, tolerant=True
            )
            for idx in sorted(failures):
                self._quarantine_node(idx, "daemon unreachable at start")
            # Ranks DPCL cannot reach are released through the launcher
            # so the application (and its collectives) can still run.
            for name in list(self.quarantined):
                self._direct_release(name)
        else:
            yield from self.client.resume(self.process_names)
        tf.end("start", self._now())

        # Ranks run MPI_Init, barrier, call back, and spin.
        tf.begin("init-callbacks", self._now())
        if self.degraded:
            expected = list(self.active_processes)
            msgs = yield from self.client.wait_callback(
                tag=INIT_CALLBACK_TAG, n=len(expected),
                timeout=CALLBACK_TIMEOUT,
            )
            heard = {m.process_name for m in msgs}
            for name in expected:
                if name not in heard:
                    self._quarantine(name, "no init callback (lost or daemon dead)")
                    self._direct_release(name)
        else:
            yield from self.client.wait_callback(
                tag=INIT_CALLBACK_TAG, n=len(self.process_names)
            )
        tf.end("init-callbacks", self._now())

        # Install everything queued while the ranks are captive in the spin.
        if self._queued:
            tf.begin("instrument", self._now(), detail=f"{len(self._queued)} globs")
            yield from self._install_into_all(self._queued)
            tf.end("instrument", self._now())
            self._queued = []

        # Release the spins; the second barrier re-synchronises the ranks.
        tf.begin("release", self._now())
        for name in self.active_processes:
            if self.degraded:
                try:
                    yield from self.client.set_variable(name, SPIN_VARIABLE, 1)
                except DpclError as exc:
                    self._quarantine(name, f"spin release failed: {exc}")
                    self._direct_release(name)
            else:
                yield from self.client.set_variable(name, SPIN_VARIABLE, 1)
        tf.end("release", self._now())

        self.create_and_instrument_time = self._now()
        self.state = "running"
        if self.quarantined:
            self._emit(
                f"application started (degraded: {len(self.quarantined)}/"
                f"{len(self.process_names)} ranks quarantined)"
            )
        else:
            self._emit("application started")

    def _cmd_wait(self, command: Command) -> Generator:
        yield self.env.timeout(command.seconds)
        self._emit(f"waited {command.seconds}s")

    def _cmd_quit(self, command: Command) -> Generator:
        # Detach; all active instrumentation stays in the application.
        if self.degraded:
            try:
                yield from self.client.detach()
            except DpclError as exc:
                self._emit(f"warning: detach incomplete: {exc}")
        else:
            yield from self.client.detach()
        self.state = "detached"
        self._emit("detached")

    # -- probe plumbing -------------------------------------------------------------------

    def _build_probe_requests(self, names: Sequence[str]):
        """Expand function globs into per-process VT probe requests."""
        probes = []
        registrations = []
        matched_any = set()
        for pname in self.active_processes:
            image = self.client.image_of(pname)
            for glob in names:
                for fi in image.find_functions(glob):
                    if fi.name in ("MPI_Init", "MPI_Finalize", "VT_init"):
                        continue  # never double-instrument the runtime anchors
                    matched_any.add(glob)
                    registrations.append((pname, fi.name))
                    probes.append((pname, fi.name, ENTRY, VTProbeSnippet(fi, BEGIN)))
                    probes.append((pname, fi.name, EXIT, VTProbeSnippet(fi, END)))
        unmatched = [g for g in names if g not in matched_any]
        if unmatched:
            self._emit(f"warning: no functions match {' '.join(unmatched)}")
        return probes, registrations

    def _install_into_all(self, names: Sequence[str]) -> Generator:
        probes, registrations = self._build_probe_requests(names)
        if not probes:
            return
        t_install0 = self._now()
        if self.degraded:
            results, failures = yield from self.client.install_probes_tolerant(
                probes, register_names=registrations
            )
            handles = [h for h in results if h is not None]
            for (pname, fname, _where, _snippet), handle in zip(probes, results):
                if handle is not None:
                    self._handles.setdefault((pname, fname), []).append(handle)
            if failures:
                self._emit(
                    f"warning: {len(failures)} probe install(s) failed: "
                    + "; ".join(
                        f"{f['process']}:{f['function']} ({f['reason']})"
                        for f in failures[:4]
                    )
                )
                if self._obs.enabled:
                    self._obs.inc("dynprof.probe_install_failures", len(failures))
        else:
            handles = yield from self.client.install_probes(
                probes, register_names=registrations
            )
            for (pname, fname, _where, _snippet), handle in zip(probes, handles):
                self._handles.setdefault((pname, fname), []).append(handle)
        if self._obs.enabled:
            self._obs.inc("dynprof.probe_inserts", len(handles))
        if self._trace.enabled:
            # One fan-out flow: the tool's install action is the cause of
            # the patched code appearing in every target process.
            per_proc: Dict[str, int] = {}
            for pname, _fname, _where, _snippet in probes:
                per_proc[pname] = per_proc.get(pname, 0) + 1
            flow = self._trace.new_flow()
            self._trace.flow_start(
                TOOL_PID, 0, flow, "probe.insert", "dynprof", t_install0,
                args={"probes": len(handles), "globs": list(names)},
            )
            for index, pname in enumerate(self.process_names):
                if pname in per_proc:
                    self._trace.flow_end(
                        index, 0, flow, "probe.patched", "dynprof",
                        self._now(), args={"probes": per_proc[pname]},
                    )
            self._trace.instant(
                TOOL_PID, 0, "probe.insert", "dynprof", self._now(),
                args={"probes": len(handles)},
            )
        self._emit(f"installed {len(handles)} probes")

    def _suspend_patch_resume(self, install: Sequence[str], remove: Sequence[str]) -> Generator:
        """Mid-run modification: stop-all, patch, continue-all.

        The suspend message reaches the per-node daemons with differing
        delays (DPCL asynchrony), so ranks stop at slightly different
        times — the imbalance Section 5.1 proposes confsync-triggered
        safe points to avoid.
        """
        if self.state != "running":
            raise DynProfError(f"mid-run patch in state {self.state}")
        tf = self.timefile
        t_patch0 = self._now()
        tf.begin("suspend", t_patch0)
        yield from self.client.suspend(self._controllable(), blocking=True)
        tf.end("suspend", self._now())
        try:
            if install:
                tf.begin("instrument", self._now(), detail=f"{len(install)} globs")
                yield from self._install_into_all(install)
                tf.end("instrument", self._now())
            if remove:
                tf.begin("remove", self._now(), detail=f"{len(remove)} globs")
                handles = []
                for pname in self.process_names:
                    image = self.client.image_of(pname)
                    for glob in remove:
                        for fi in image.find_functions(glob):
                            handles.extend(self._handles.pop((pname, fi.name), []))
                if handles:
                    n = yield from self.client.remove_probes(handles)
                    if self._obs.enabled:
                        self._obs.inc("dynprof.probe_removes", n)
                    if self._trace.enabled:
                        self._trace.instant(
                            TOOL_PID, 0, "probe.remove", "dynprof",
                            self._now(), args={"probes": n},
                        )
                    self._emit(f"removed {n} probes")
                tf.end("remove", self._now())
        finally:
            tf.begin("resume", self._now())
            yield from self.client.resume(self._controllable())
            tf.end("resume", self._now())
            if self._obs.enabled:
                self._obs.inc("dynprof.suspend_patches")
                self._obs.span("dynprof.patch", self._now() - t_patch0)
            if self._trace.enabled:
                self._trace.complete(
                    TOOL_PID, 0, "suspend-patch-resume", "dynprof.patch",
                    t_patch0, self._now(),
                    args={"insert": len(install), "remove": len(remove)},
                )

    # -- introspection --------------------------------------------------------------------

    def probe_inventory(self) -> Dict[str, Dict[str, int]]:
        """Installed-probe counts: {process: {function: count}}.

        Counts only the probes this tool installed (bootstrap excluded),
        from its own handle table — what a user would see from the
        tool's perspective, not from omniscient image access.
        """
        inventory: Dict[str, Dict[str, int]] = {}
        for (pname, fname), handles in self._handles.items():
            if handles:
                inventory.setdefault(pname, {})[fname] = len(handles)
        return inventory

    def __repr__(self) -> str:
        return f"<DynProf {self.job.exe.name} state={self.state}>"
