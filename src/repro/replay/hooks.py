"""Recorder/controller hooks — the replay twin of :mod:`repro.obs`.

The engine, the MPI mailboxes and the fault injector each capture the
current replay sink at construction (``self._replay = get()``) and
consult only its ``enabled`` flag on the hot path, exactly like the
metrics registry: with nothing installed they hold the :data:`NULL`
singleton and a recorded-off run pays one attribute read per decision
site.  Figure outputs are byte-identical with recording on or off —
the recorder only observes.

Two sinks exist:

* :class:`OrderRecorder` appends every decision to an
  :class:`~repro.replay.orderlog.OrderLog`.
* :class:`ReplayController` verifies each decision against a recorded
  log and raises :class:`~repro.replay.errors.DivergenceError` at the
  first mismatch — including a re-run that makes *more* decisions than
  were recorded, or (via :meth:`ReplayController.finish`) fewer.

Use the :func:`recording` / :func:`replaying` context managers around
point execution; they must be entered *before* the simulation objects
are constructed (which :func:`repro.runner.worker.execute_point` does).
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Optional

from ..obs import get as _obs_get
from .errors import DivergenceError
from .orderlog import (
    CH_DELIVER,
    CH_EVENT,
    CH_FAULT,
    CH_MATCH,
    CHANNEL_NAMES,
    Decision,
    OrderLog,
    float_bits,
)

__all__ = [
    "NULL",
    "get",
    "install",
    "uninstall",
    "recording",
    "replaying",
    "OrderRecorder",
    "ReplayController",
]


def _event_key(event: Any) -> str:
    """A stable identity string for one engine event."""
    name = getattr(event, "name", None)
    if name is not None:
        return "P:" + str(name)
    return type(event).__name__


class _NullReplay:
    """Recording disabled: the hot paths see only ``enabled = False``."""

    enabled = False

    def __repr__(self) -> str:
        return "<replay disabled>"


NULL = _NullReplay()

_current: Any = NULL


def get() -> Any:
    """The currently installed replay sink (:data:`NULL` when off)."""
    return _current


def install(sink: Any) -> Any:
    """Install ``sink`` as the current replay sink; returns the previous."""
    global _current
    previous = _current
    _current = sink
    return previous


def uninstall(previous: Any = NULL) -> None:
    """Restore ``previous`` (default: disable recording)."""
    global _current
    _current = previous


class OrderRecorder:
    """Appends every nondeterminism decision to an order log."""

    enabled = True

    def __init__(self, meta: Optional[Dict[str, Any]] = None) -> None:
        self.log = OrderLog(meta=meta)
        self._obs = _obs_get()

    # -- decision sites -------------------------------------------------------

    def on_event(self, event: Any, when: float, priority: int) -> None:
        """The engine drained one (non-cancelled) event."""
        self.log.decisions.append(
            Decision(CH_EVENT, _event_key(event), priority, when)
        )

    def on_deliver(self, src: int, dst: int, tag: int, context: str,
                   position: int, time: float) -> None:
        """An envelope arrived: matched posted recv #position, or -1 =
        filed into the unexpected queue."""
        self.log.decisions.append(
            Decision(CH_DELIVER, f"{src}>{dst}:{tag}:{context}", position, time)
        )

    def on_match(self, src: int, dst: int, tag: int, context: str,
                 position: int, time: float) -> None:
        """A posted receive matched unexpected-queue envelope #position."""
        self.log.decisions.append(
            Decision(CH_MATCH, f"{src}>{dst}:{tag}:{context}", position, time)
        )

    def on_fault(self, stream: str, draw: float, time: float) -> None:
        """The fault injector drew ``draw`` from named stream ``stream``."""
        self.log.decisions.append(
            Decision(CH_FAULT, stream, float_bits(draw), time)
        )

    # -- bookkeeping ----------------------------------------------------------

    def flush_obs(self) -> None:
        """Fold the recording counters into the metrics registry once,
        at detach time, so the per-decision path stays allocation-only."""
        if self._obs.enabled and self.log.decisions:
            self._obs.inc("replay.recorded_decisions", len(self.log.decisions))
            self._obs.inc("replay.recordings")

    def __repr__(self) -> str:
        return f"<OrderRecorder {len(self.log)} decision(s)>"


class ReplayController:
    """Verifies a re-run decision-by-decision against a recorded log."""

    enabled = True

    def __init__(self, log: OrderLog) -> None:
        self.log = log
        self.cursor = 0
        #: The first divergence, latched: the engine may catch the raised
        #: error inside a simulated process and keep draining events, so
        #: later checks re-raise this same report rather than a new one.
        self.failure: Optional[DivergenceError] = None
        self._obs = _obs_get()

    # -- decision sites (mirror OrderRecorder) --------------------------------

    def on_event(self, event: Any, when: float, priority: int) -> None:
        self._check(CH_EVENT, _event_key(event), priority, when)

    def on_deliver(self, src: int, dst: int, tag: int, context: str,
                   position: int, time: float) -> None:
        self._check(CH_DELIVER, f"{src}>{dst}:{tag}:{context}", position, time)

    def on_match(self, src: int, dst: int, tag: int, context: str,
                 position: int, time: float) -> None:
        self._check(CH_MATCH, f"{src}>{dst}:{tag}:{context}", position, time)

    def on_fault(self, stream: str, draw: float, time: float) -> None:
        self._check(CH_FAULT, stream, float_bits(draw), time)

    # -- verification ---------------------------------------------------------

    def _check(self, channel: int, key: str, value: int, time: float) -> None:
        if self.failure is not None:
            raise self.failure
        actual = Decision(channel, key, value, time)
        index = self.cursor
        if index >= len(self.log.decisions):
            self._diverge(index, expected=None, actual=actual, time=time)
        expected = self.log.decisions[index]
        if expected != actual:
            self._diverge(index, expected=expected, actual=actual, time=time)
        self.cursor = index + 1

    def _diverge(
        self,
        index: int,
        expected: Optional[Decision],
        actual: Optional[Decision],
        time: float,
    ) -> None:
        if self._obs.enabled:
            self._obs.inc("replay.divergences")
        side = actual if actual is not None else expected
        self.failure = DivergenceError(
            index=index,
            channel=CHANNEL_NAMES[side.channel] if side is not None else "?",
            sim_time=time,
            expected=expected.to_dict() if expected is not None else None,
            actual=actual.to_dict() if actual is not None else None,
        )
        raise self.failure

    def finish(self) -> None:
        """The re-run ended: every recorded decision must be consumed.

        Raises :class:`DivergenceError` if recorded decisions remain —
        the re-run took a shorter path than the recorded one."""
        if self.failure is not None:
            # The engine swallowed the in-run divergence (a crashed
            # process nobody joined on); a completed run must still
            # surface it rather than count as verified.
            raise self.failure
        if self.cursor < len(self.log.decisions):
            pending = self.log.decisions[self.cursor]
            self._diverge(self.cursor, expected=pending, actual=None,
                          time=pending.time)
        if self._obs.enabled:
            self._obs.inc("replay.verified_decisions", self.cursor)
            self._obs.inc("replay.verified_runs")

    def __repr__(self) -> str:
        return f"<ReplayController {self.cursor}/{len(self.log)}>"


@contextlib.contextmanager
def recording(meta: Optional[Dict[str, Any]] = None) -> Iterator[OrderRecorder]:
    """Record every decision made while the context is active.

    Must wrap the *construction* of the simulation objects, which
    capture the sink once (the obs discipline)."""
    recorder = OrderRecorder(meta=meta)
    previous = install(recorder)
    try:
        yield recorder
    finally:
        uninstall(previous)
        recorder.flush_obs()


@contextlib.contextmanager
def replaying(log: OrderLog) -> Iterator[ReplayController]:
    """Verify the enclosed run against ``log``; raises
    :class:`DivergenceError` at the first divergent decision, including
    a clean run that ends with recorded decisions still pending."""
    controller = ReplayController(log)
    previous = install(controller)
    completed = False
    try:
        yield controller
        completed = True
    finally:
        uninstall(previous)
        if completed:
            # No exception in flight: enforce full consumption (raises).
            controller.finish()
