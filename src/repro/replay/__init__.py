"""Record-and-replay: partial-order recording, divergence detection,
fault-plan bisection.

The simulations are deterministic by construction, so "replay" here is
*verified re-execution*: an :class:`~repro.replay.hooks.OrderRecorder`
logs every nondeterminism decision of a run — which event the engine
drained, how each message matched, every fault-injector draw — into a
compact :class:`~repro.replay.orderlog.OrderLog`, and a
:class:`~repro.replay.hooks.ReplayController` re-runs the point while
checking each decision against the log, raising a structured
:class:`~repro.replay.errors.DivergenceError` at the first mismatch.
On top of that, :func:`~repro.replay.bisect.bisect_plan` delta-debugs
a failing fault plan to a minimal failing subset.  See
``docs/replay.md``.

The bisection driver is exported lazily: it imports the worker, which
imports this package for its record/replay plumbing.
"""

from .errors import DivergenceError
from .hooks import (
    NULL,
    OrderRecorder,
    ReplayController,
    get,
    install,
    recording,
    replaying,
    uninstall,
)
from .orderlog import (
    CH_DELIVER,
    CH_EVENT,
    CH_FAULT,
    CH_MATCH,
    CHANNEL_NAMES,
    Decision,
    OrderLog,
)

__all__ = [
    "DivergenceError",
    "Decision",
    "OrderLog",
    "OrderRecorder",
    "ReplayController",
    "CHANNEL_NAMES",
    "CH_EVENT",
    "CH_DELIVER",
    "CH_MATCH",
    "CH_FAULT",
    "NULL",
    "get",
    "install",
    "uninstall",
    "recording",
    "replaying",
    "BisectResult",
    "bisect_plan",
    "ddmin",
    "point_with_faults",
]

_LAZY = {"BisectResult", "bisect_plan", "ddmin", "point_with_faults"}


def __getattr__(name):
    if name in _LAZY:
        from . import bisect as _bisect

        return getattr(_bisect, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
