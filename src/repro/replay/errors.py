"""Structured divergence reporting for record-and-replay.

A :class:`DivergenceError` pins the *first* decision at which a replayed
run stopped matching its recorded order log: the decision index, the
channel (engine event, message delivery, unexpected-queue match, fault
draw), the simulated time at which the divergence was observed, and the
expected vs. actual decision identities.  It is deliberately not a
:class:`~repro.simt.errors.SimtError`: a divergence is a *verification*
failure of the re-execution, not a malfunction of the simulation.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["DivergenceError"]

#: Human names of the order-log channels (mirrors repro.replay.orderlog).
CHANNEL_NAMES = ("event", "deliver", "match", "fault")


def _channel_name(channel: int) -> str:
    if 0 <= channel < len(CHANNEL_NAMES):
        return CHANNEL_NAMES[channel]
    return f"channel{channel}"


class DivergenceError(Exception):
    """A replayed run made a decision its order log did not record.

    Attributes
    ----------
    index:
        0-based position in the decision sequence where the runs part.
    channel:
        Channel of the *actual* decision (``"event"``, ``"deliver"``,
        ``"match"``, ``"fault"``), or the expected one when the replay
        ended early (``actual`` is then None).
    sim_time:
        Simulated time at which the divergence was observed.
    expected:
        The recorded decision as a dict (``channel``/``key``/``value``/
        ``time``), or None when the replay produced *more* decisions
        than were recorded.
    actual:
        The decision the re-run actually made, same shape, or None when
        the re-run ended with recorded decisions still pending.
    """

    def __init__(
        self,
        index: int,
        channel: str,
        sim_time: float,
        expected: Optional[Dict[str, Any]],
        actual: Optional[Dict[str, Any]],
    ) -> None:
        self.index = index
        self.channel = channel
        self.sim_time = sim_time
        self.expected = expected
        self.actual = actual
        super().__init__(self._describe())

    def _describe(self) -> str:
        def fmt(side: Optional[Dict[str, Any]]) -> str:
            if side is None:
                return "(nothing)"
            return (f"{_channel_name(side['channel'])} {side['key']!r} "
                    f"value={side['value']} t={side['time']:g}")

        return (
            f"replay diverged at decision #{self.index} "
            f"(t={self.sim_time:g}, channel={self.channel}): "
            f"expected {fmt(self.expected)}, got {fmt(self.actual)}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe form for worker envelopes and CLI documents."""
        return {
            "index": self.index,
            "channel": self.channel,
            "sim_time": self.sim_time,
            "expected": self.expected,
            "actual": self.actual,
            "message": str(self),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "DivergenceError":
        return cls(
            index=int(doc["index"]),
            channel=str(doc["channel"]),
            sim_time=float(doc["sim_time"]),
            expected=doc.get("expected"),
            actual=doc.get("actual"),
        )
