"""The compact order log — what a recorded run's nondeterminism looks like.

Following the distributed order-recording literature, the log stores
only the *order decisions* of a run, never payloads: which event the
engine drained at each step, how each arriving message matched (a
posted receive, or the unexpected queue), which unexpected envelope a
posted receive claimed, and every fault-injector draw.  Re-running the
(deterministic) simulation under the same inputs must reproduce the
same decision sequence; the replay controller verifies exactly that
and reports the first decision where it no longer holds.

Each decision is a 4-tuple:

``channel``
    One of :data:`CH_EVENT` (engine drained one event),
    :data:`CH_DELIVER` (an envelope arrived and matched), :data:`CH_MATCH`
    (a posted receive matched from the unexpected queue) or
    :data:`CH_FAULT` (the fault injector drew from a named stream).
``key``
    The decision's identity: the event's process name or type, the
    message flow ``"src>dst:tag:context"``, or the fault stream name.
``value``
    Channel-specific integer: scheduling priority, the matched queue
    position (-1 = filed as unexpected), or the IEEE-754 bit pattern of
    the drawn float.
``time``
    Simulated time of the decision.

Serialisation (``RRLG`` format, version 1) uses the
:mod:`repro.compact.varint` primitives — string-interned keys, LEB128
varints, zigzag for the signed values and the second-order bit-pattern
delta codec for timestamps — plus a counted trailer so a truncated
file is detected rather than silently shortened.

.. note::
   The :mod:`repro.compact` imports are deferred to call time:
   ``repro.compact`` transitively imports :mod:`repro.vt`, which
   imports :mod:`repro.simt` — and the engine imports
   :mod:`repro.replay.hooks` (which imports this module), so a
   module-level import here would be circular.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Any, Dict, List, NamedTuple, Optional

__all__ = [
    "CH_EVENT",
    "CH_DELIVER",
    "CH_MATCH",
    "CH_FAULT",
    "CHANNEL_NAMES",
    "Decision",
    "OrderLog",
    "FORMAT_VERSION",
]

CH_EVENT = 0
CH_DELIVER = 1
CH_MATCH = 2
CH_FAULT = 3

CHANNEL_NAMES = ("event", "deliver", "match", "fault")

FORMAT_VERSION = 1

_MAGIC = b"RRLG"
_TRAILER = b"GLRR"

_PACK_D = struct.Struct("<d")
_PACK_Q = struct.Struct("<q")


def float_bits(value: float) -> int:
    """Signed 64-bit integer holding ``value``'s IEEE-754 bit pattern.

    Local twin of :func:`repro.compact.varint.float_to_bits` so the
    *recording* hot path never touches the compact import chain (see
    the module note); the lossless-round-trip property is identical.
    """
    return _PACK_Q.unpack(_PACK_D.pack(value))[0]


def bits_float(bits: int) -> float:
    """Inverse of :func:`float_bits`."""
    return _PACK_D.unpack(_PACK_Q.pack(bits))[0]


class Decision(NamedTuple):
    """One recorded nondeterminism decision."""

    channel: int
    key: str
    value: int
    time: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "channel": self.channel,
            "channel_name": CHANNEL_NAMES[self.channel]
            if 0 <= self.channel < len(CHANNEL_NAMES) else str(self.channel),
            "key": self.key,
            "value": self.value,
            "time": self.time,
        }


class OrderLog:
    """A run's decision sequence plus identifying metadata.

    ``meta`` carries whatever the recorder needs to make the log
    self-contained — conventionally the point's canonical JSON under
    ``"point"`` — and must be JSON-safe and deterministic (no wall
    clocks), so recording the same run twice yields byte-identical
    logs.
    """

    __slots__ = ("meta", "decisions")

    def __init__(
        self,
        meta: Optional[Dict[str, Any]] = None,
        decisions: Optional[List[Decision]] = None,
    ) -> None:
        self.meta: Dict[str, Any] = meta if meta is not None else {}
        self.decisions: List[Decision] = decisions if decisions is not None else []

    def __len__(self) -> int:
        return len(self.decisions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderLog):
            return NotImplemented
        return self.meta == other.meta and self.decisions == other.decisions

    def __repr__(self) -> str:
        return f"<OrderLog {len(self.decisions)} decision(s)>"

    def append(self, channel: int, key: str, value: int, time: float) -> None:
        self.decisions.append(Decision(channel, key, value, time))

    def counts(self) -> Dict[str, int]:
        """Decision counts per channel name (stable key order)."""
        out = {name: 0 for name in CHANNEL_NAMES}
        for d in self.decisions:
            out[CHANNEL_NAMES[d.channel]] += 1
        return out

    # -- serialisation --------------------------------------------------------

    def to_bytes(self) -> bytes:
        from ..compact.varint import DeltaEncoder, encode_uvarint, zigzag

        out = bytearray()
        out += _MAGIC
        encode_uvarint(FORMAT_VERSION, out)
        meta_blob = json.dumps(
            self.meta, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        encode_uvarint(len(meta_blob), out)
        out += meta_blob
        # String table, first-appearance order.
        table: Dict[str, int] = {}
        for d in self.decisions:
            if d.key not in table:
                table[d.key] = len(table)
        encode_uvarint(len(table), out)
        for key in table:
            blob = key.encode("utf-8")
            encode_uvarint(len(blob), out)
            out += blob
        encode_uvarint(len(self.decisions), out)
        times = DeltaEncoder()
        for d in self.decisions:
            encode_uvarint(d.channel, out)
            encode_uvarint(table[d.key], out)
            encode_uvarint(zigzag(d.value), out)
            times.encode(d.time, out)
        # Counted trailer: a truncated log fails loudly, not shortly.
        encode_uvarint(len(self.decisions), out)
        out += _TRAILER
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "OrderLog":
        from ..compact.varint import DeltaDecoder, decode_uvarint, unzigzag

        if data[:4] != _MAGIC:
            raise ValueError("not an RRLG order log (bad magic)")
        pos = 4
        try:
            version, pos = decode_uvarint(data, pos)
            if version != FORMAT_VERSION:
                raise ValueError(f"unsupported order-log version {version}")
            meta_len, pos = decode_uvarint(data, pos)
            meta = json.loads(data[pos:pos + meta_len].decode("utf-8"))
            pos += meta_len
            n_keys, pos = decode_uvarint(data, pos)
            table: List[str] = []
            for _ in range(n_keys):
                blob_len, pos = decode_uvarint(data, pos)
                table.append(data[pos:pos + blob_len].decode("utf-8"))
                pos += blob_len
            n, pos = decode_uvarint(data, pos)
            times = DeltaDecoder()
            decisions: List[Decision] = []
            for _ in range(n):
                channel, pos = decode_uvarint(data, pos)
                key_idx, pos = decode_uvarint(data, pos)
                z, pos = decode_uvarint(data, pos)
                t, pos = times.decode(data, pos)
                decisions.append(
                    Decision(channel, table[key_idx], unzigzag(z), t)
                )
            trailer_n, pos = decode_uvarint(data, pos)
        except (ValueError, IndexError) as exc:
            if isinstance(exc, ValueError) and "order-log" in str(exc):
                raise
            raise ValueError(f"truncated or corrupt order log: {exc}") from None
        if trailer_n != n or data[pos:pos + 4] != _TRAILER:
            raise ValueError(
                "truncated or corrupt order log (trailer mismatch)"
            )
        return cls(meta=meta, decisions=decisions)

    def to_b64(self) -> str:
        """ASCII form for riding JSON worker envelopes and wire frames."""
        return base64.b64encode(self.to_bytes()).decode("ascii")

    @classmethod
    def from_b64(cls, text: str) -> "OrderLog":
        return cls.from_bytes(base64.b64decode(text.encode("ascii")))

    def save(self, path: str) -> None:
        with open(path, "wb") as fh:
            fh.write(self.to_bytes())

    @classmethod
    def load(cls, path: str) -> "OrderLog":
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())
