"""Delta-debugging a failing fault plan down to a minimal subset.

Given a point and a fault plan whose run is "interesting" — it fails,
its payload differs from the fault-free payload, or it diverges from a
recorded clean run — :func:`bisect_plan` applies the classic ddmin
algorithm (Zeller & Hildebrandt) over the plan's ``FaultSpec`` list:
repeatedly re-execute the (deterministic) point under subsets and
complements at increasing granularity until no smaller subset stays
interesting.  Determinism is what makes this sound: the same
(point, sub-plan) pair always reproduces the same outcome, so every
test is a reliable oracle and the returned subset is 1-minimal
(removing any single remaining spec makes the failure disappear).

Three built-in predicates (``mode``):

``effect``
    Interesting iff the payload differs from the fault-free baseline
    payload (which spec actually changed the outcome?).  The
    comparison skips the injection report and any key the baseline
    does not have: carrying a plan always attaches those, whether or
    not a single fault fired.
``fail``
    Interesting iff the envelope status is not ``"ok"``.
``diverge``
    Interesting iff replaying the run against a *clean* recorded order
    log raises :class:`~repro.replay.errors.DivergenceError` (which
    spec perturbed the partial order?).  Requires ``against`` — an
    :class:`~repro.replay.orderlog.OrderLog` recorded from the
    fault-free run of the same point.

:func:`repro.runner.worker.execute_point` is imported lazily — the
worker imports this package for its record/replay plumbing, so a
module-level import the other way would be circular.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..faults.plan import FaultPlan, FaultSpec
from ..runner.point import SweepPoint, _faults_params
from .orderlog import OrderLog

__all__ = ["BisectResult", "bisect_plan", "ddmin", "point_with_faults"]


def point_with_faults(point: SweepPoint, plan: Optional[FaultPlan]) -> SweepPoint:
    """The same point under a different fault plan (empty/None = clean)."""
    params = tuple((k, v) for k, v in point.params if k != "faults")
    params += _faults_params(plan)
    return dataclasses.replace(point, params=params)


@dataclass
class BisectResult:
    """Outcome of one plan bisection."""

    #: The 1-minimal interesting sub-plan.
    minimal: FaultPlan
    #: Spec count of the original plan.
    original_size: int
    #: Point executions performed (cache-free deterministic re-runs).
    tests: int
    #: One row per test: {"specs": [indices...], "interesting": bool}.
    history: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "minimal": self.minimal.to_dict(),
            "minimal_size": len(self.minimal),
            "original_size": self.original_size,
            "tests": self.tests,
            "history": self.history,
        }


def ddmin(
    items: Sequence[Any],
    interesting: Callable[[List[Any]], bool],
) -> List[Any]:
    """Classic ddmin: a 1-minimal sublist of ``items`` that stays
    interesting.  ``interesting(items)`` must be True; the empty list
    is assumed uninteresting (the caller's baseline)."""
    current = list(items)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        subsets = [current[i:i + chunk] for i in range(0, len(current), chunk)]
        reduced = False
        for i, subset in enumerate(subsets):
            if len(subsets) > 1 and interesting(subset):
                current = subset
                granularity = 2
                reduced = True
                break
            complement = [x for j, s in enumerate(subsets) if j != i for x in s]
            if complement and len(complement) < len(current) \
                    and interesting(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(granularity * 2, len(current))
    return current


def bisect_plan(
    point: SweepPoint,
    plan: FaultPlan,
    mode: str = "effect",
    against: Optional[OrderLog] = None,
    timeout: Optional[float] = None,
) -> BisectResult:
    """Delta-debug ``plan`` to a 1-minimal interesting sub-plan.

    ``point`` may or may not already carry the plan; it is re-armed
    with each candidate subset before execution.  Raises ValueError
    when the full plan is not interesting (nothing to minimize) or, in
    ``effect``/``diverge`` mode, when the *empty* plan already is (the
    baseline itself fails the oracle).
    """
    from ..runner.worker import execute_point

    if mode not in ("effect", "fail", "diverge"):
        raise ValueError(f"unknown bisect mode {mode!r}")
    if mode == "diverge" and against is None:
        raise ValueError("diverge mode needs a recorded clean order log")

    tests = [0]
    history: List[Dict[str, Any]] = []
    specs = list(plan.specs)
    indices = {id(s): i for i, s in enumerate(specs)}

    def run(subset: List[FaultSpec]) -> Dict[str, Any]:
        sub_plan = FaultPlan(specs=tuple(subset))
        sub_point = point_with_faults(point, sub_plan)
        tests[0] += 1
        if mode == "diverge":
            return execute_point(sub_point, timeout=timeout,
                                 replay_log=against.to_b64())
        return execute_point(sub_point, timeout=timeout)

    baseline_blob: Optional[str] = None
    baseline_keys: Optional[frozenset] = None

    def effect_view(payload: Any) -> str:
        # Compare only what the fault-free baseline also reports.  A
        # non-empty plan always attaches an injection report (the
        # "faults" payload key) and may route instrument points through
        # the detail measurement (extra breakdown keys) — structural
        # side effects of *carrying* a plan, not evidence the plan
        # changed the outcome.
        if isinstance(payload, dict) and baseline_keys is not None:
            payload = {k: v for k, v in payload.items()
                       if k != "faults" and k in baseline_keys}
        return json.dumps(payload, sort_keys=True)

    if mode == "effect":
        clean = run([])
        if clean["status"] != "ok":
            raise ValueError(
                "effect-mode baseline (fault-free run) did not succeed: "
                f"{clean.get('error', clean['status'])}"
            )
        if isinstance(clean["payload"], dict):
            baseline_keys = frozenset(clean["payload"])
        baseline_blob = effect_view(clean["payload"])

    def interesting(subset: List[FaultSpec]) -> bool:
        envelope = run(subset)
        if mode == "fail":
            hit = envelope["status"] != "ok"
        elif mode == "diverge":
            hit = envelope["status"] == "diverged"
        else:
            hit = (envelope["status"] != "ok"
                   or effect_view(envelope["payload"]) != baseline_blob)
        history.append({
            "specs": sorted(indices[id(s)] for s in subset),
            "interesting": hit,
        })
        return hit

    if not interesting(specs):
        raise ValueError(
            f"the full {len(specs)}-spec plan is not interesting under "
            f"mode={mode!r}; nothing to minimize"
        )
    if mode in ("effect", "diverge") and specs and interesting([]):
        raise ValueError(
            f"the empty plan is already interesting under mode={mode!r}; "
            "the baseline itself fails the oracle"
        )

    minimal = ddmin(specs, interesting)
    return BisectResult(
        minimal=FaultPlan(specs=tuple(minimal), note=plan.note),
        original_size=len(specs),
        tests=tests[0],
        history=history,
    )
