"""repro.faults — deterministic, seeded fault injection.

The layers above the cluster model only the happy path unless told
otherwise; this package schedules the unhappy ones — comm-daemon
crashes, control-message loss and delay, probe-install failures, rank
stalls and slowdowns, VT trace-buffer write failures — as first-class,
bit-reproducible simulation behaviour.

Usage::

    plan = FaultPlan.of(
        FaultSpec("daemon_crash", node=1),
        FaultSpec("message_loss", probability=0.01),
    )
    injector = FaultInjector.install(plan, cluster)   # None if plan empty
    ...
    injector.summary()   # {"daemon_crash": 12, "message_loss": 3}

See :mod:`repro.faults.plan` for the fault model and determinism
contract, and ``docs/faults.md`` for the recovery behaviour of each
hardened consumer (DPCL client retries, dynprof quarantine, runner
retry policy).
"""

from .injector import FaultInjector
from .plan import CANNED_PLANS, FAULT_KINDS, FaultPlan, FaultSpec, canned_plan

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "FAULT_KINDS",
    "CANNED_PLANS",
    "canned_plan",
]
