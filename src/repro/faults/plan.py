"""Declarative fault plans — what goes wrong, where, and when.

A :class:`FaultPlan` is an ordered tuple of :class:`FaultSpec` entries.
Plans are frozen, JSON round-trippable, and canonicalize to a stable
compact string, so a plan can ride a :class:`~repro.runner.point.SweepPoint`
parameter into worker processes and into the content-addressed result
cache (a faulty run never aliases a clean one).

Determinism: a plan describes *probabilities and windows*, never draws.
All randomness is drawn at injection time by the
:class:`~repro.faults.injector.FaultInjector` from dedicated named RNG
streams under the cluster's root seed, so the same (plan, seed) pair
reproduces the same faults bit-for-bit — and an *empty* plan draws
nothing at all, leaving the simulation untouched.

Fault kinds
-----------

``daemon_crash``
    The DPCL daemons on node ``node`` are down during [start, end):
    every request delivered to them is silently dropped (a crashed
    process reads nothing from its sockets).  ``end=None`` means the
    daemon never comes back; a finite ``end`` models crash + restart.
``message_loss``
    Each DPCL control message (request, ack, callback) sent during
    [start, end) is dropped with probability ``probability``.
``message_delay``
    Each control message is delayed by an exponential draw with mean
    ``delay`` seconds (on top of the normal wire time), during
    [start, end).
``probe_install_fail``
    Each probe-install operation on node ``node`` (or any node when
    ``node`` is None) fails with probability ``probability`` — the
    ptrace-poke analog of an unwritable text page.
``rank_stall``
    Rank ``rank`` is suspended at ``start`` and resumed at ``end``
    (both required) — an OS-level stop the tool did not ask for.
``rank_slowdown``
    Rank ``rank`` (or every rank when None) runs all compute at
    ``factor`` times its normal cost — a degraded core or a noisy
    neighbour.
``vt_write_fail``
    Each VT trace-buffer write on rank ``rank`` (or any rank when None)
    fails with probability ``probability`` during [start, end); the
    record is lost, the run continues.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

__all__ = ["FaultSpec", "FaultPlan", "FAULT_KINDS", "CANNED_PLANS", "canned_plan"]

FAULT_KINDS = (
    "daemon_crash",
    "message_loss",
    "message_delay",
    "probe_install_fail",
    "rank_stall",
    "rank_slowdown",
    "vt_write_fail",
)

#: Which optional fields each kind accepts (beyond start/end).
_KIND_FIELDS = {
    "daemon_crash": {"node"},
    "message_loss": {"probability"},
    "message_delay": {"delay"},
    "probe_install_fail": {"node", "probability"},
    "rank_stall": {"rank"},
    "rank_slowdown": {"rank", "factor"},
    "vt_write_fail": {"rank", "probability"},
}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.  Unused fields stay at their defaults."""

    kind: str
    #: Target node index (daemon_crash, probe_install_fail) or None=any.
    node: Optional[int] = None
    #: Target rank (rank_stall, rank_slowdown, vt_write_fail) or None=any.
    rank: Optional[int] = None
    #: Window start in simulated seconds.
    start: float = 0.0
    #: Window end (exclusive); None = forever.
    end: Optional[float] = None
    #: Per-event probability for the probabilistic kinds.
    probability: float = 1.0
    #: Compute multiplier for rank_slowdown.
    factor: float = 1.0
    #: Mean added delay (seconds) for message_delay.
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability {self.probability} outside [0, 1]")
        if self.start < 0.0:
            raise ValueError(f"negative start {self.start}")
        if self.end is not None and self.end < self.start:
            raise ValueError(f"end {self.end} before start {self.start}")
        if self.factor <= 0.0:
            raise ValueError(f"non-positive slowdown factor {self.factor}")
        if self.delay < 0.0:
            raise ValueError(f"negative delay {self.delay}")
        if self.kind == "rank_stall":
            if self.rank is None:
                raise ValueError("rank_stall needs an explicit rank")
            if self.end is None:
                raise ValueError("rank_stall needs a finite end (resume time)")
        if self.kind == "daemon_crash" and self.node is None:
            raise ValueError("daemon_crash needs an explicit node")

    def active_at(self, now: float) -> bool:
        """True while ``now`` falls inside this spec's [start, end)."""
        return now >= self.start and (self.end is None or now < self.end)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict carrying only the fields this kind uses."""
        doc: Dict[str, Any] = {"kind": self.kind}
        if self.start != 0.0:
            doc["start"] = self.start
        if self.end is not None:
            doc["end"] = self.end
        fields = _KIND_FIELDS[self.kind]
        if "node" in fields and self.node is not None:
            doc["node"] = self.node
        if "rank" in fields and self.rank is not None:
            doc["rank"] = self.rank
        if "probability" in fields:
            doc["probability"] = self.probability
        if "factor" in fields:
            doc["factor"] = self.factor
        if "delay" in fields:
            doc["delay"] = self.delay
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "FaultSpec":
        if not isinstance(doc, dict) or "kind" not in doc:
            raise ValueError(f"fault spec must be a dict with 'kind': {doc!r}")
        known = {"kind", "node", "rank", "start", "end",
                 "probability", "factor", "delay"}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"fault spec has unknown fields {sorted(unknown)}: {doc!r}"
            )
        return cls(**doc)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, frozen collection of fault specs."""

    specs: Tuple[FaultSpec, ...] = ()
    #: Free-form provenance note (not part of the canonical identity).
    note: str = ""

    @classmethod
    def of(cls, *specs: FaultSpec, note: str = "") -> "FaultPlan":
        return cls(specs=tuple(specs), note=note)

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @property
    def is_empty(self) -> bool:
        return not self.specs

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def by_kind(self, kind: str) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == kind)

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {"faults": [s.to_dict() for s in self.specs]}

    @classmethod
    def from_dict(cls, doc: Dict[str, Any], note: str = "") -> "FaultPlan":
        if isinstance(doc, list):
            specs = doc
        elif isinstance(doc, dict):
            specs = doc.get("faults", [])
            if not isinstance(specs, list):
                raise ValueError("'faults' must be a list of fault specs")
        else:
            raise ValueError(f"fault plan must be a dict or list: {doc!r}")
        return cls(
            specs=tuple(FaultSpec.from_dict(s) for s in specs), note=note
        )

    def canonical(self) -> str:
        """Compact, key-sorted JSON string — the plan's stable identity
        (suitable as a :class:`SweepPoint` parameter / cache-key input)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str, note: str = "") -> "FaultPlan":
        return cls.from_dict(json.loads(text), note=note)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh), note=path)

    def __repr__(self) -> str:
        kinds = ",".join(s.kind for s in self.specs) or "empty"
        return f"<FaultPlan {kinds}>"


# -- canned plans (chaos CLI presets, CI smoke) ---------------------------------


def _daemon_crash_attach() -> FaultPlan:
    """The acceptance scenario: the comm daemon on node 1 dies just as
    the tool is attaching, plus 1% control-message loss everywhere."""
    return FaultPlan.of(
        FaultSpec("daemon_crash", node=1, start=0.0),
        FaultSpec("message_loss", probability=0.01),
        note="canned:daemon-crash-attach",
    )


def _flaky_network() -> FaultPlan:
    return FaultPlan.of(
        FaultSpec("message_loss", probability=0.05),
        FaultSpec("message_delay", delay=0.005),
        note="canned:flaky-network",
    )


def _straggler() -> FaultPlan:
    return FaultPlan.of(
        FaultSpec("rank_slowdown", rank=1, factor=1.5),
        FaultSpec("vt_write_fail", probability=0.02),
        note="canned:straggler",
    )


CANNED_PLANS = {
    "daemon-crash-attach": _daemon_crash_attach,
    "flaky-network": _flaky_network,
    "straggler": _straggler,
}


def canned_plan(name: str) -> FaultPlan:
    """A named preset plan (``chaos --plan NAME``)."""
    try:
        return CANNED_PLANS[name]()
    except KeyError:
        raise KeyError(
            f"unknown canned fault plan {name!r}; "
            f"known: {', '.join(sorted(CANNED_PLANS))}"
        ) from None
