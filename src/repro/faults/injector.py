"""The fault injector: turns a :class:`FaultPlan` into runtime behaviour.

One :class:`FaultInjector` binds one plan to one
:class:`~repro.cluster.topology.Cluster`.  Installation attaches it to
``cluster.faults`` and ``cluster.interconnect.faults``; the hardened
layers (interconnect control deliveries, DPCL daemons, VT state, job
launch) consult it through those attributes and pay nothing when it is
absent.

Determinism contract
--------------------

Every probabilistic decision draws from a *named* stream under the
cluster RNG's dedicated ``faults`` namespace — keyed by what is being
decided (the link, the probe, the rank), never by global draw order —
so faults reproduce bit-for-bit for a given (plan, seed) and do not
perturb any pre-existing stream (network jitter, DPCL skew).  An empty
plan is never installed, draws nothing, and leaves the simulation
bit-identical to a run without the faults layer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, Optional, Tuple

from ..obs import get as _obs_get
from ..replay.hooks import get as _replay_get
from .plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..cluster import Cluster, Task

__all__ = ["FaultInjector"]


class FaultInjector:
    """Runtime oracle for one (plan, cluster) pair."""

    def __init__(self, plan: FaultPlan, cluster: "Cluster") -> None:
        self.plan = plan
        self.cluster = cluster
        self.env = cluster.env
        #: All draws live under the cluster's "faults" namespace.
        self.rng = cluster.rng.child("faults")
        self._obs = _obs_get()
        self._replay = _replay_get()
        #: Injected-fault tally by kind (always kept, obs on or off).
        self.counts: Dict[str, int] = {}
        self._crash_specs = plan.by_kind("daemon_crash")
        self._loss_specs = plan.by_kind("message_loss")
        self._delay_specs = plan.by_kind("message_delay")
        self._probe_specs = plan.by_kind("probe_install_fail")

    # -- installation ---------------------------------------------------------

    @classmethod
    def install(
        cls, plan: Optional[FaultPlan], cluster: "Cluster"
    ) -> Optional["FaultInjector"]:
        """Attach an injector for ``plan`` to ``cluster``.

        Returns None (and installs nothing) for a missing or empty plan,
        so fault-free runs take exactly the pre-faults code paths.
        """
        if plan is None or plan.is_empty:
            return None
        injector = cls(plan, cluster)
        cluster.faults = injector
        cluster.interconnect.faults = injector
        return injector

    # -- bookkeeping ----------------------------------------------------------

    def _count(self, kind: str, n: int = 1) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + n
        if self._obs.enabled:
            self._obs.inc("faults.injected", n)
            self._obs.inc(f"faults.{kind}", n)

    # -- recorded draws -------------------------------------------------------

    def _draw(self, stream: str) -> float:
        """One uniform [0, 1) draw from a named stream, order-logged."""
        value = float(self.rng.get(stream).random())
        if self._replay.enabled:
            self._replay.on_fault(stream, value, self.env.now)
        return value

    def _draw_exponential(self, stream: str, mean: float) -> float:
        """One exponential draw from a named stream, order-logged."""
        value = float(self.rng.get(stream).exponential(mean))
        if self._replay.enabled:
            self._replay.on_fault(stream, value, self.env.now)
        return value

    def summary(self) -> Dict[str, int]:
        """Injected-fault counts by kind (stable key order)."""
        return {k: self.counts[k] for k in sorted(self.counts)}

    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    # -- DPCL daemon faults ---------------------------------------------------

    def daemon_down(self, node_index: int, now: float) -> bool:
        """True while the daemons on ``node_index`` are crashed."""
        for spec in self._crash_specs:
            if spec.node == node_index and spec.active_at(now):
                return True
        return False

    def note_daemon_drop(self, node_index: int) -> None:
        """A crashed daemon swallowed one request (counted per message)."""
        self._count("daemon_crash")

    def probe_install_fails(
        self, node_index: int, process_name: str, function: str
    ) -> bool:
        """Decide (deterministically) whether one probe install fails."""
        now = self.env.now
        for spec in self._probe_specs:
            if spec.node is not None and spec.node != node_index:
                continue
            if not spec.active_at(now):
                continue
            stream = f"probe.{node_index}.{process_name}.{function}"
            if self._draw(stream) < spec.probability:
                self._count("probe_install_fail")
                return True
        return False

    # -- interconnect faults --------------------------------------------------

    def on_control_message(
        self, src_index: int, dst_index: int, nbytes: int, now: float
    ) -> Tuple[bool, float]:
        """(drop?, extra_delay) for one control message on the wire."""
        for spec in self._loss_specs:
            if spec.active_at(now):
                stream = f"loss.{src_index}.{dst_index}"
                if self._draw(stream) < spec.probability:
                    self._count("message_loss")
                    return True, 0.0
        extra = 0.0
        for spec in self._delay_specs:
            if spec.active_at(now) and spec.delay > 0.0:
                stream = f"delay.{src_index}.{dst_index}"
                extra += self._draw_exponential(stream, spec.delay)
        if extra > 0.0:
            self._count("message_delay")
        return False, extra

    # -- job-level faults -----------------------------------------------------

    def apply_to_job(self, job) -> None:
        """Arm rank-level faults (stall, slowdown, VT write failure) on a
        freshly started job.  Called by the job launchers."""
        tasks = list(getattr(job, "tasks", ()))
        if not tasks and getattr(job, "task", None) is not None:
            tasks = [job.task]  # OmpJob: one process, rank 0
        for spec in self.plan.by_kind("rank_slowdown"):
            for rank, task in enumerate(tasks):
                if spec.rank is None or spec.rank == rank:
                    task.slowdown *= spec.factor
                    self._count("rank_slowdown")
        for spec in self.plan.by_kind("rank_stall"):
            if spec.rank < len(tasks):
                self.env.process(
                    self._stall(tasks[spec.rank], spec.start, spec.end),
                    name=f"fault:stall[{spec.rank}]",
                )
        vt_states = getattr(job, "vt_states", None)
        if vt_states is None:
            vt = getattr(job, "vt", None)
            vt_states = [vt] if vt is not None else []
        write_specs = self.plan.by_kind("vt_write_fail")
        if write_specs:
            for rank, vt in enumerate(vt_states):
                if vt is None:
                    continue
                specs = [s for s in write_specs
                         if s.rank is None or s.rank == rank]
                if specs:
                    vt.write_fault = self._make_vt_write_fault(rank, specs)

    def _stall(self, task: "Task", start: float, end: float) -> Generator:
        if start > self.env.now:
            yield self.env.timeout(start - self.env.now)
        if task.proc is not None and not task.proc.is_alive:
            return
        task.request_suspend()
        self._count("rank_stall")
        if end > self.env.now:
            yield self.env.timeout(end - self.env.now)
        if task.is_suspend_requested:
            task.resume()

    def _make_vt_write_fault(self, rank: int, specs):
        stream_name = f"vtwrite.{rank}"
        stream = self.rng.get(stream_name)

        def write_fails(task) -> bool:
            now = task.now
            for spec in specs:
                if spec.active_at(now):
                    value = float(stream.random())
                    if self._replay.enabled:
                        self._replay.on_fault(stream_name, value, now)
                    if value < spec.probability:
                        self._count("vt_write_fail")
                        return True
            return False

        return write_fails

    def __repr__(self) -> str:
        return (
            f"<FaultInjector {len(self.plan)} spec(s), "
            f"{self.total_injected} injected>"
        )
