"""Base and mini trampolines — the runtime-code-patching model of Figure 1.

When a probe point is instrumented, the original instruction at the point
is (conceptually) displaced by a jump to a :class:`BaseTrampoline`, which
saves registers, runs a chain of :class:`MiniTrampoline` s (each holding
one inserted snippet), executes the relocated instruction, restores
registers and jumps back.  The simulation charges:

* ``tramp_base_cost`` once per firing (jump + save/restore + relocated
  instruction + jump back), as long as the base trampoline is installed —
  even if every mini in the chain is deactivated;
* ``tramp_mini_cost`` per *active* mini traversed;
* the snippet's own per-op cost as it executes.
"""

from __future__ import annotations

from itertools import count
from typing import TYPE_CHECKING, Generator, List, Optional

from ..obs.trace import get as _trace_get
from .snippet import Snippet, _run

if TYPE_CHECKING:  # pragma: no cover
    from .executor import ProgramContext

__all__ = ["MiniTrampoline", "BaseTrampoline", "ProbeHandle"]

_handle_ids = count(1)


class MiniTrampoline:
    """One block of dynamically inserted instrumentation code."""

    __slots__ = ("snippet", "handle_id", "active")

    def __init__(self, snippet: Snippet) -> None:
        self.snippet = snippet
        self.handle_id = next(_handle_ids)
        #: Installed probes may be inactive (DPCL install vs. activate).
        self.active = False

    def __repr__(self) -> str:
        state = "active" if self.active else "installed"
        return f"<MiniTrampoline #{self.handle_id} {state}: {self.snippet.describe()}>"


class ProbeHandle:
    """Opaque handle returned by probe installation, used for removal."""

    __slots__ = ("image_name", "function", "where", "mini")

    def __init__(self, image_name: str, function: str, where: str, mini: MiniTrampoline) -> None:
        self.image_name = image_name
        self.function = function
        self.where = where
        self.mini = mini

    def __repr__(self) -> str:
        return f"<ProbeHandle {self.function}@{self.where} #{self.mini.handle_id}>"


class BaseTrampoline:
    """The per-probe-point trampoline holding a chain of minis."""

    __slots__ = ("minis", "_trace")

    def __init__(self) -> None:
        self.minis: List[MiniTrampoline] = []
        self._trace = _trace_get()

    @property
    def has_active(self) -> bool:
        return any(m.active for m in self.minis)

    def insert(self, snippet: Snippet, activate: bool = True) -> MiniTrampoline:
        """Append a mini-trampoline to the chain (paper: minis are chained,
        the last one jumps back to the base trampoline)."""
        mini = MiniTrampoline(snippet)
        mini.active = activate
        self.minis.append(mini)
        return mini

    def remove(self, mini: MiniTrampoline) -> bool:
        """Unlink a mini from the chain; True if it was present."""
        try:
            self.minis.remove(mini)
            return True
        except ValueError:
            return False

    def fire(self, pctx: "ProgramContext") -> Generator:
        """Execute the trampoline in ``pctx`` (the probe point was hit).

        Iterates a snapshot of the chain: a blocking snippet (e.g. the
        bootstrap spin) can suspend the target long enough for a daemon
        to insert or remove minis at this very probe point, and the
        in-flight firing must see a consistent chain.
        """
        spec = pctx.spec
        pctx.task.charge(spec.tramp_base_cost)
        overhead = spec.tramp_base_cost
        for mini in tuple(self.minis):
            if not mini.active:
                continue
            pctx.task.charge(spec.tramp_mini_cost)
            overhead += spec.tramp_mini_cost
            yield from _run(mini.snippet, pctx)
        if self._trace.enabled:
            # Trampoline mechanics only (jump/save/restore/minis); the
            # snippet's own work is attributed by the VT probe path.
            self._trace.count("tramp.firings")
            self._trace.count("tramp.time", overhead)

    def batch_cost(self, pctx: "ProgramContext") -> Optional[float]:
        """Per-firing cost if every active snippet is batchable, else None.

        Used by the leaf-call batching fast path: when all snippets in the
        chain support batched execution (VT probe snippets do), ``n``
        firings can be charged as ``n * batch_cost`` plus one batched
        side-effect per snippet.
        """
        total = pctx.spec.tramp_base_cost
        for mini in self.minis:
            if not mini.active:
                continue
            per_fire = getattr(mini.snippet, "batch_fire_cost", None)
            if per_fire is None:
                return None
            total += pctx.spec.tramp_mini_cost + per_fire(pctx)
        return total

    def batch_side_effects(self, pctx: "ProgramContext", n: int, t_start: float, period: float, phase: float) -> None:
        """Apply the batched side effects of ``n`` firings.

        ``t_start`` is the local time of the first firing, ``period`` the
        spacing between consecutive firings, ``phase`` the offset of this
        probe within one iteration (entry=0, exit=body end).
        """
        for mini in self.minis:
            if not mini.active:
                continue
            mini.snippet.batch_apply(pctx, n, t_start + phase, period)  # type: ignore[attr-defined]

    def __len__(self) -> int:
        return len(self.minis)

    def __repr__(self) -> str:
        return f"<BaseTrampoline minis={len(self.minis)} active={sum(m.active for m in self.minis)}>"
