"""repro.program — executable-image model and runtime code patching.

The substrate for dynamic instrumentation: symbol tables
(:class:`ExecutableImage`), per-process live images
(:class:`ProcessImage`), Dyninst-style snippets, base/mini trampolines
(Figure 1 of the paper), and the :class:`ProgramContext` executor that
runs application call trees with both static and dynamic probes applied.
"""

from .executor import ProgramContext, set_batching, unbatched
from .image import (
    ENTRY,
    EXIT,
    ExecutableImage,
    FunctionInstance,
    FunctionSymbol,
    ProcessImage,
    VariableCell,
)
from .snippet import (
    Arith,
    Assign,
    CallFunc,
    Compare,
    Const,
    If,
    IncrementVar,
    Nop,
    Sequence,
    Snippet,
    SnippetError,
    SpinWait,
    VarRef,
)
from .trampoline import BaseTrampoline, MiniTrampoline, ProbeHandle

__all__ = [
    "ENTRY",
    "EXIT",
    "ExecutableImage",
    "ProcessImage",
    "FunctionSymbol",
    "FunctionInstance",
    "VariableCell",
    "ProgramContext",
    "set_batching",
    "unbatched",
    "Snippet",
    "SnippetError",
    "Const",
    "VarRef",
    "Assign",
    "Arith",
    "Compare",
    "CallFunc",
    "Sequence",
    "If",
    "IncrementVar",
    "Nop",
    "SpinWait",
    "BaseTrampoline",
    "MiniTrampoline",
    "ProbeHandle",
]
