"""The call-tree executor: runs application functions on a task.

:class:`ProgramContext` is one thread of control (an MPI rank's main
thread, or one OpenMP thread) executing functions of a
:class:`~repro.program.image.ProcessImage`.  On every call it applies, in
order:

1. the *dynamic* entry trampoline, if one is patched in (Figure 1);
2. the *static* compiled-in VT entry probe, if the build has one;
3. the function body;
4. the static VT exit probe;
5. the dynamic exit trampoline.

Two fast paths keep large workloads tractable without distorting the
cost model:

* plain (non-generator) bodies are invoked directly, avoiding generator
  plumbing for compute-only functions;
* :meth:`ProgramContext.call_batch` executes ``n`` identical *leaf*
  calls in aggregate — per-call probe costs are charged ``n`` times and
  trace records are emitted as batch records, which is exact for cost
  and count purposes because leaf calls cannot block or nest.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Generator, Iterator, Optional, Union

from ..cluster import MachineSpec, Task
from ..simt import Environment
from .image import FunctionInstance, ProcessImage

__all__ = ["ProgramContext", "set_batching", "unbatched"]

#: When False, :meth:`ProgramContext.call_batch` takes the per-call
#: loop instead of the aggregate fast path (so every enter/leave pair
#: is emitted raw instead of as one BatchPairRecord).
_BATCHING = True


def set_batching(enabled: bool) -> bool:
    """Turn the batch fast path on or off; returns the previous state.

    Batching is exact for cost and count purposes, so this exists for
    *verification*, not tuning: the trace-volume cross-check runs the
    same workload batched and unbatched and demands both match the
    analytic model (and each other) — see ``experiments/tracevol.py``.
    """
    global _BATCHING
    previous = _BATCHING
    _BATCHING = bool(enabled)
    return previous


@contextmanager
def unbatched() -> Iterator[None]:
    """Run a block with the batch fast path disabled."""
    previous = set_batching(False)
    try:
        yield
    finally:
        set_batching(previous)


class ProgramContext:
    """Execution context of one thread of control."""

    __slots__ = (
        "env",
        "task",
        "image",
        "spec",
        "mpi",
        "omp",
        "thread_id",
        "props",
    )

    def __init__(
        self,
        env: Environment,
        task: Task,
        image: ProcessImage,
        spec: MachineSpec,
        thread_id: int = 0,
    ) -> None:
        self.env = env
        self.task = task
        self.image = image
        self.spec = spec
        #: Rank handle, set by the MPI runtime when the app is MPI.
        self.mpi: Any = None
        #: Team handle, set by the OpenMP runtime inside parallel regions.
        self.omp: Any = None
        self.thread_id = thread_id
        #: Scratch space for application state.
        self.props: dict = {}

    # -- clock & compute delegates ------------------------------------------

    @property
    def now(self) -> float:
        """Local clock (engine time + unflushed compute)."""
        return self.task.now

    def charge(self, dt: float) -> None:
        self.task.charge(dt)

    def compute(self, dt: float) -> Generator:
        yield from self.task.compute(dt)

    def flush(self) -> Generator:
        yield from self.task.flush()

    # -- function lookup -------------------------------------------------------

    def fn(self, name: str) -> FunctionInstance:
        """Resolve a function by name (cache the result in app code)."""
        return self.image.func(name)

    # -- the call protocol ------------------------------------------------------

    def call(self, target: Union[str, FunctionInstance], *args: Any) -> Generator:
        """Call a function with full probe semantics. Generator."""
        fi = target if isinstance(target, FunctionInstance) else self.image.func(target)
        fi.call_count += 1
        vt = self.image.vt
        if fi.entry is not None:
            yield from fi.entry.fire(self)
        if fi.static_on and vt is not None:
            vt.static_begin(self, fi)
        sym = fi.symbol
        body = sym.body
        sampling = self.task.sample_accum is not None
        if sampling:
            t_before = self.task.compute_time
        if body is None:
            result = None
        elif sym.is_generator:
            result = yield from body(self, *args)
        else:
            result = body(self, *args)
        if sampling:
            # Inclusive attribution, the way a SIGPROF-style sampler
            # sees time (leaves dominate; see dynprof.ephemeral).  The
            # sampler may have detached while the body ran.
            accum = self.task.sample_accum
            if accum is not None:
                accum[fi.name] = accum.get(fi.name, 0.0) + (
                    self.task.compute_time - t_before
                )
        if fi.static_on and vt is not None:
            vt.static_end(self, fi)
        if fi.exit is not None:
            yield from fi.exit.fire(self)
        return result

    def call_leaf(
        self,
        target: Union[str, FunctionInstance],
        cost: float,
        work: Optional[Callable[[], Any]] = None,
    ) -> Generator:
        """One call of a leaf function whose body is pure compute.

        ``cost`` is the modelled body time; ``work``, if given, is real
        Python/numpy computation executed for its results (its wall time
        is *represented* by ``cost``, not added to it).
        """
        yield from self.call_batch(target, 1, cost, work)

    def call_batch(
        self,
        target: Union[str, FunctionInstance],
        n: int,
        per_call_cost: float,
        work: Optional[Callable[[], Any]] = None,
    ) -> Generator:
        """Execute ``n`` identical calls of a leaf function, in aggregate.

        Equivalent (in charged time, trace-record counts and statistics)
        to calling the function ``n`` times back-to-back.  Requires the
        function to be a leaf: its symbol must have no body.  If the
        probe configuration is not batchable (a non-VT snippet is patched
        in), falls back to ``n`` individual calls.
        """
        if n < 0:
            raise ValueError("negative batch count")
        if n == 0:
            return None
        fi = target if isinstance(target, FunctionInstance) else self.image.func(target)
        if fi.symbol.body is not None:
            raise ValueError(
                f"call_batch target {fi.name!r} has a body; only cost-only "
                f"leaf functions can be batched"
            )
        if not _BATCHING:
            yield from self._call_loop(fi, n, per_call_cost, work)
            return None
        entry_cost = 0.0
        exit_cost = 0.0
        if fi.entry is not None:
            c = fi.entry.batch_cost(self)
            if c is None:
                yield from self._call_loop(fi, n, per_call_cost, work)
                return None
            entry_cost = c
        if fi.exit is not None:
            c = fi.exit.batch_cost(self)
            if c is None:
                yield from self._call_loop(fi, n, per_call_cost, work)
                return None
            exit_cost = c

        vt = self.image.vt
        begin_cost = end_cost = 0.0
        static_records = False
        if fi.static_on and vt is not None:
            begin_cost, end_cost, static_records = vt.pair_info(self, fi)

        period = entry_cost + begin_cost + per_call_cost + end_cost + exit_cost
        t0 = self.task.now
        fi.call_count += n

        # Side effects *before* charging, using precomputed timestamps.
        if static_records:
            # The begin timestamp is taken inside VT_begin, i.e. after the
            # entry trampoline and the begin-event cost of iteration 0.
            first_begin = t0 + entry_cost + begin_cost
            duration = per_call_cost + end_cost  # inclusive: until VT_end stamps
            vt.record_batch_pair(self, fi, n, first_begin, period, duration)
        if fi.entry is not None and len(fi.entry) > 0:
            fi.entry.batch_side_effects(self, n, t0, period, phase=entry_cost)
        if fi.exit is not None and len(fi.exit) > 0:
            fi.exit.batch_side_effects(
                self, n, t0, period,
                phase=entry_cost + begin_cost + per_call_cost + end_cost + exit_cost,
            )

        self.task.charge(n * period)
        accum = self.task.sample_accum
        if accum is not None:
            accum[fi.name] = accum.get(fi.name, 0.0) + n * per_call_cost
        if work is not None:
            work()
        return None

    def _call_loop(
        self,
        fi: FunctionInstance,
        n: int,
        per_call_cost: float,
        work: Optional[Callable[[], Any]],
    ) -> Generator:
        """Slow-but-general fallback: n individual probed calls."""
        vt = self.image.vt
        for _ in range(n):
            fi.call_count += 1
            if fi.entry is not None:
                yield from fi.entry.fire(self)
            if fi.static_on and vt is not None:
                vt.static_begin(self, fi)
            self.task.charge(per_call_cost)
            if fi.static_on and vt is not None:
                vt.static_end(self, fi)
            if fi.exit is not None:
                yield from fi.exit.fire(self)
        if work is not None:
            work()

    def __repr__(self) -> str:
        return f"<ProgramContext {self.task.name} tid={self.thread_id}>"
