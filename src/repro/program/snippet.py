"""Dyninst-style instrumentation snippets.

A snippet is a small AST describing the code a mini-trampoline executes
(the paper calls these *instrumentation primitives*, e.g.
``start_timer();`` in Figure 1).  Snippets are built by the monitoring
tool, shipped to the DPCL daemons, and executed inside the target
process's address space.

Execution is generator-based because a snippet may *block* the target:
the MPI_Init bootstrap snippet of Figure 6 contains two ``MPI_Barrier``
calls and a spin-wait.  Each AST node charges
``MachineSpec.snippet_op_cost`` to the executing task, so longer
mini-trampolines genuinely cost more target time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional, Sequence as Seq

if TYPE_CHECKING:  # pragma: no cover
    from .executor import ProgramContext

__all__ = [
    "Snippet",
    "Const",
    "VarRef",
    "Assign",
    "Arith",
    "Compare",
    "CallFunc",
    "Sequence",
    "If",
    "SpinWait",
    "Nop",
]


class SnippetError(Exception):
    """Raised for malformed snippets or unresolved call targets."""


class Snippet:
    """Base class of all snippet AST nodes."""

    #: Number of primitive operations this node itself contributes.
    op_weight: int = 1

    def execute(self, pctx: "ProgramContext") -> Generator:
        """Run the snippet in ``pctx``; may yield (block). Returns a value."""
        raise NotImplementedError

    def op_count(self) -> int:
        """Total primitive-operation count of the subtree (cost basis)."""
        return self.op_weight

    def describe(self) -> str:
        """Human-readable one-line form (used by dynprof's timefile)."""
        return type(self).__name__


class Nop(Snippet):
    """Does nothing; the analog of ``configuration_break``'s empty body."""

    op_weight = 0

    def execute(self, pctx: "ProgramContext") -> Generator:
        return None
        yield  # pragma: no cover - marks this as a generator function

    def describe(self) -> str:
        return "nop"


class Const(Snippet):
    """A literal value."""

    def __init__(self, value: Any) -> None:
        self.value = value

    def execute(self, pctx: "ProgramContext") -> Generator:
        pctx.task.charge(pctx.spec.snippet_op_cost * self.op_weight)
        return self.value
        yield  # pragma: no cover

    def describe(self) -> str:
        return repr(self.value)


class VarRef(Snippet):
    """Read a variable from the target process's address space."""

    def __init__(self, name: str) -> None:
        self.name = name

    def execute(self, pctx: "ProgramContext") -> Generator:
        pctx.task.charge(pctx.spec.snippet_op_cost * self.op_weight)
        return pctx.image.read_variable(self.name)
        yield  # pragma: no cover

    def describe(self) -> str:
        return self.name


class Assign(Snippet):
    """Write ``expr`` into a target-process variable."""

    def __init__(self, name: str, expr: Snippet) -> None:
        self.name = name
        self.expr = expr

    def execute(self, pctx: "ProgramContext") -> Generator:
        value = yield from _run(self.expr, pctx)
        pctx.task.charge(pctx.spec.snippet_op_cost * self.op_weight)
        pctx.image.write_variable(self.name, value)
        return value

    def op_count(self) -> int:
        return self.op_weight + self.expr.op_count()

    def describe(self) -> str:
        return f"{self.name} = {self.expr.describe()}"


_ARITH_OPS: dict = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}

_CMP_OPS: dict = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Arith(Snippet):
    """Binary arithmetic on two sub-snippets."""

    def __init__(self, op: str, lhs: Snippet, rhs: Snippet) -> None:
        if op not in _ARITH_OPS:
            raise SnippetError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def execute(self, pctx: "ProgramContext") -> Generator:
        a = yield from _run(self.lhs, pctx)
        b = yield from _run(self.rhs, pctx)
        pctx.task.charge(pctx.spec.snippet_op_cost * self.op_weight)
        return _ARITH_OPS[self.op](a, b)

    def op_count(self) -> int:
        return self.op_weight + self.lhs.op_count() + self.rhs.op_count()

    def describe(self) -> str:
        return f"({self.lhs.describe()} {self.op} {self.rhs.describe()})"


class Compare(Snippet):
    """Binary comparison on two sub-snippets."""

    def __init__(self, op: str, lhs: Snippet, rhs: Snippet) -> None:
        if op not in _CMP_OPS:
            raise SnippetError(f"unknown comparison operator {op!r}")
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def execute(self, pctx: "ProgramContext") -> Generator:
        a = yield from _run(self.lhs, pctx)
        b = yield from _run(self.rhs, pctx)
        pctx.task.charge(pctx.spec.snippet_op_cost * self.op_weight)
        return _CMP_OPS[self.op](a, b)

    def op_count(self) -> int:
        return self.op_weight + self.lhs.op_count() + self.rhs.op_count()

    def describe(self) -> str:
        return f"({self.lhs.describe()} {self.op} {self.rhs.describe()})"


class CallFunc(Snippet):
    """Call a function registered in the target's address space.

    The callee is resolved at execution time against the process image's
    runtime registry — this is how inserted code "directly calls an
    instrumentation library" (Figure 1).  The callee may be a plain
    callable or a generator function (blocking, e.g. ``MPI_Barrier``).
    """

    op_weight = 2  # call + return

    def __init__(self, name: str, args: Optional[Seq[Snippet]] = None) -> None:
        self.name = name
        self.args = list(args or [])

    def execute(self, pctx: "ProgramContext") -> Generator:
        values = []
        for arg in self.args:
            values.append((yield from _run(arg, pctx)))
        pctx.task.charge(pctx.spec.snippet_op_cost * self.op_weight)
        target = pctx.image.resolve_runtime(self.name)
        if target is None:
            raise SnippetError(
                f"snippet calls unresolved function {self.name!r} in "
                f"{pctx.image.name}"
            )
        result = target(pctx, *values)
        if hasattr(result, "send"):  # blocking callee
            result = yield from result
        return result

    def op_count(self) -> int:
        return self.op_weight + sum(a.op_count() for a in self.args)

    def describe(self) -> str:
        args = ", ".join(a.describe() for a in self.args)
        return f"{self.name}({args})"


class Sequence(Snippet):
    """Execute sub-snippets in order; value of the last one."""

    op_weight = 0

    def __init__(self, items: Seq[Snippet]) -> None:
        self.items = list(items)

    def execute(self, pctx: "ProgramContext") -> Generator:
        result = None
        for item in self.items:
            result = yield from _run(item, pctx)
        return result

    def op_count(self) -> int:
        return sum(i.op_count() for i in self.items)

    def describe(self) -> str:
        return "; ".join(i.describe() for i in self.items)


class If(Snippet):
    """Conditional execution."""

    def __init__(self, cond: Snippet, then: Snippet, orelse: Optional[Snippet] = None) -> None:
        self.cond = cond
        self.then = then
        self.orelse = orelse

    def execute(self, pctx: "ProgramContext") -> Generator:
        pctx.task.charge(pctx.spec.snippet_op_cost * self.op_weight)
        test = yield from _run(self.cond, pctx)
        if test:
            return (yield from _run(self.then, pctx))
        if self.orelse is not None:
            return (yield from _run(self.orelse, pctx))
        return None

    def op_count(self) -> int:
        total = self.op_weight + self.cond.op_count() + self.then.op_count()
        if self.orelse is not None:
            total += self.orelse.op_count()
        return total

    def describe(self) -> str:
        s = f"if {self.cond.describe()} {{ {self.then.describe()} }}"
        if self.orelse is not None:
            s += f" else {{ {self.orelse.describe()} }}"
        return s


class IncrementVar(Snippet):
    """Counter probe: ``variable += by`` in the target's address space.

    The classic cheap Dyninst primitive for call counting.  Batchable:
    ``n`` firings charge ``n`` times the per-fire cost and add ``n * by``
    to the counter in one step, so counting probes keep the executor's
    leaf fast path.
    """

    op_weight = 2  # load + store

    def __init__(self, name: str, by: int = 1) -> None:
        self.name = name
        self.by = by

    def execute(self, pctx: "ProgramContext") -> Generator:
        pctx.task.charge(pctx.spec.snippet_op_cost * self.op_weight)
        cell = pctx.image.variable_cell(self.name)
        cell.write((cell.value or 0) + self.by)
        return cell.value
        yield  # pragma: no cover - generator marker

    # -- batching protocol (see BaseTrampoline.batch_cost) ------------------

    def batch_fire_cost(self, pctx: "ProgramContext") -> float:
        return pctx.spec.snippet_op_cost * self.op_weight

    def batch_apply(self, pctx: "ProgramContext", n: int, t_first: float, period: float) -> None:
        cell = pctx.image.variable_cell(self.name)
        cell.write((cell.value or 0) + n * self.by)

    def describe(self) -> str:
        return f"{self.name} += {self.by}"


class SpinWait(Snippet):
    """Spin until a target-process variable becomes truthy.

    This is ``DYNVT_spin`` from Figure 6: the target burns time in a
    loop until the instrumenter (through its daemon) flips the variable.
    In the simulation the task simply blocks on the variable's cell
    event; the elapsed wall time is identical to spinning, and the
    timeline view reports the interval as bootstrap wait.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def execute(self, pctx: "ProgramContext") -> Generator:
        pctx.task.charge(pctx.spec.snippet_op_cost * self.op_weight)
        yield from pctx.task.flush()
        cell = pctx.image.variable_cell(self.name)
        while not cell.value:
            yield cell.changed()
        return cell.value

    def describe(self) -> str:
        return f"spin_until({self.name})"


def _run(snippet: Snippet, pctx: "ProgramContext") -> Generator:
    """Execute ``snippet``, transparently handling non-generator returns."""
    gen = snippet.execute(pctx)
    if hasattr(gen, "send"):
        return (yield from gen)
    return gen  # pragma: no cover - all execute() are generators today
