"""Executable-image and process-image models.

An :class:`ExecutableImage` is the on-disk program: a symbol table of
:class:`FunctionSymbol` s, each optionally carrying *static* VT
instrumentation (the Guide compiler analog inserts entry/exit profile
calls at compile time, Section 3.1).

A :class:`ProcessImage` is one OS process's copy of the image: dynamic
patches (trampolines), address-space variables, and the runtime-function
registry snippets resolve against.  MPI ranks each get their own process
image — dynprof must patch every one of them — while all OpenMP threads
of a process share a single image, which is why Umt98's instrumentation
time is flat in Figure 9.
"""

from __future__ import annotations

import fnmatch
import inspect
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..simt import Environment, Event
from .snippet import Snippet
from .trampoline import BaseTrampoline, ProbeHandle

__all__ = [
    "ENTRY",
    "EXIT",
    "FunctionSymbol",
    "FunctionInstance",
    "ExecutableImage",
    "ProcessImage",
    "VariableCell",
]

#: Probe-point location names (the paper instruments entries and exits).
ENTRY = "entry"
EXIT = "exit"
_LOCATIONS = (ENTRY, EXIT)


class FunctionSymbol:
    """A function in the executable's symbol table."""

    __slots__ = (
        "name",
        "module",
        "body",
        "is_generator",
        "static_instrumented",
        "size_bytes",
        "instrumentable",
    )

    def __init__(
        self,
        name: str,
        body: Optional[Callable] = None,
        module: str = "main",
        size_bytes: int = 512,
        instrumentable: bool = True,
    ) -> None:
        self.name = name
        self.module = module
        self.body = body
        self.is_generator = body is not None and inspect.isgeneratorfunction(body)
        #: Set by the compiler when -instrument (VGV static mode) is on.
        self.static_instrumented = False
        self.size_bytes = size_bytes
        self.instrumentable = instrumentable

    def __repr__(self) -> str:
        return f"<FunctionSymbol {self.module}:{self.name}>"


class ExecutableImage:
    """The static program: symbol table + compile-time instrumentation."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.symbols: Dict[str, FunctionSymbol] = {}

    def add_function(self, symbol: FunctionSymbol) -> FunctionSymbol:
        if symbol.name in self.symbols:
            raise ValueError(f"duplicate symbol {symbol.name!r} in {self.name}")
        self.symbols[symbol.name] = symbol
        return symbol

    def define(self, name: str, body: Optional[Callable] = None, **kw: Any) -> FunctionSymbol:
        """Convenience: create and add a FunctionSymbol."""
        return self.add_function(FunctionSymbol(name, body, **kw))

    def function_names(self) -> List[str]:
        return list(self.symbols)

    def instrument_statically(self, names: Optional[Iterable[str]] = None) -> int:
        """The Guide-compiler analog: compile in VT entry/exit probes.

        Returns the number of functions instrumented.  With ``names=None``
        every instrumentable function is instrumented (the paper's Full /
        Full-Off / Subset builds all statically instrument everything —
        the *configuration file* is what turns probes off).
        """
        count = 0
        targets = self.symbols.values() if names is None else (
            self.symbols[n] for n in names
        )
        for sym in targets:
            if sym.instrumentable and not sym.static_instrumented:
                sym.static_instrumented = True
                count += 1
        return count

    def __contains__(self, name: str) -> bool:
        return name in self.symbols

    def __repr__(self) -> str:
        return f"<ExecutableImage {self.name} ({len(self.symbols)} functions)>"


class VariableCell:
    """One address-space variable with change notification (for spins)."""

    __slots__ = ("name", "value", "_watchers", "_env")

    def __init__(self, env: Environment, name: str, value: Any = 0) -> None:
        self._env = env
        self.name = name
        self.value = value
        self._watchers: List[Event] = []

    def write(self, value: Any) -> None:
        self.value = value
        watchers, self._watchers = self._watchers, []
        for event in watchers:
            event.succeed(value)

    def changed(self) -> Event:
        """Event triggering at the next write to this variable."""
        event = Event(self._env)
        self._watchers.append(event)
        return event


class FunctionInstance:
    """Per-process-image state of one function (hot path of the executor)."""

    __slots__ = ("symbol", "name", "entry", "exit", "fid", "call_count", "static_on")

    def __init__(self, symbol: FunctionSymbol) -> None:
        self.symbol = symbol
        self.name = symbol.name
        #: Installed base trampolines, or None while unpatched.
        self.entry: Optional[BaseTrampoline] = None
        self.exit: Optional[BaseTrampoline] = None
        #: VT function id once registered (VT_funcdef), else None.
        self.fid: Optional[int] = None
        self.call_count = 0
        #: Mirror of symbol.static_instrumented (kept in slots for speed).
        self.static_on = symbol.static_instrumented

    def trampoline_at(self, where: str, create: bool = False) -> Optional[BaseTrampoline]:
        if where not in _LOCATIONS:
            raise ValueError(f"unknown probe location {where!r}")
        tramp = self.entry if where == ENTRY else self.exit
        if tramp is None and create:
            tramp = BaseTrampoline()
            if where == ENTRY:
                self.entry = tramp
            else:
                self.exit = tramp
        return tramp

    def drop_empty_trampoline(self, where: str) -> None:
        tramp = self.entry if where == ENTRY else self.exit
        if tramp is not None and len(tramp) == 0:
            if where == ENTRY:
                self.entry = None
            else:
                self.exit = None

    def __repr__(self) -> str:
        return f"<FunctionInstance {self.name} calls={self.call_count}>"


class ProcessImage:
    """One process's live copy of an executable image."""

    def __init__(self, env: Environment, exe: ExecutableImage, name: str) -> None:
        self.env = env
        self.exe = exe
        self.name = name
        self.functions: Dict[str, FunctionInstance] = {
            n: FunctionInstance(s) for n, s in exe.symbols.items()
        }
        self._variables: Dict[str, VariableCell] = {}
        self._runtime: Dict[str, Callable] = {}
        #: The VT library state attached to this process (set by repro.vt).
        self.vt: Any = None
        #: Probes installed into this image (counts for Fig. 9 accounting).
        self.installed_probes = 0

    # -- symbols --------------------------------------------------------------

    def func(self, name: str) -> FunctionInstance:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function {name!r} in image {self.name}") from None

    def find_functions(self, pattern: str) -> List[FunctionInstance]:
        """Glob-match function names (dynprof's insert/remove arguments)."""
        return [
            fi for n, fi in self.functions.items() if fnmatch.fnmatchcase(n, pattern)
        ]

    # -- address space ----------------------------------------------------------

    def variable_cell(self, name: str) -> VariableCell:
        cell = self._variables.get(name)
        if cell is None:
            cell = VariableCell(self.env, name)
            self._variables[name] = cell
        return cell

    def read_variable(self, name: str) -> Any:
        return self.variable_cell(name).value

    def write_variable(self, name: str, value: Any) -> None:
        self.variable_cell(name).write(value)

    # -- runtime registry ----------------------------------------------------

    def register_runtime(self, name: str, fn: Callable) -> None:
        """Expose ``fn`` to snippets as callee ``name`` (library function)."""
        self._runtime[name] = fn

    def resolve_runtime(self, name: str) -> Optional[Callable]:
        return self._runtime.get(name)

    # -- patching (performed by DPCL daemons while the target is stopped) ----

    def install_probe(self, function: str, where: str, snippet: Snippet, activate: bool = True) -> ProbeHandle:
        fi = self.func(function)
        if not fi.symbol.instrumentable:
            raise ValueError(f"function {function!r} is not instrumentable")
        tramp = fi.trampoline_at(where, create=True)
        mini = tramp.insert(snippet, activate=activate)
        self.installed_probes += 1
        return ProbeHandle(self.name, function, where, mini)

    def remove_probe(self, handle: ProbeHandle) -> bool:
        fi = self.func(handle.function)
        tramp = fi.trampoline_at(handle.where)
        if tramp is None:
            return False
        removed = tramp.remove(handle.mini)
        if removed:
            self.installed_probes -= 1
            fi.drop_empty_trampoline(handle.where)
        return removed

    def set_probe_active(self, handle: ProbeHandle, active: bool) -> None:
        handle.mini.active = active

    def probes_installed_at(self, function: str, where: str) -> int:
        tramp = self.func(function).trampoline_at(where)
        return 0 if tramp is None else len(tramp)

    def __repr__(self) -> str:
        return f"<ProcessImage {self.name} probes={self.installed_probes}>"
