"""Sampled time-series telemetry — metrics *over* a run, not just after it.

The registry (:mod:`repro.obs.registry`) materializes one end-of-run
snapshot; this module adds the dimension the paper's whole argument
lives in: instrumentation cost evolves as the application moves through
phases, so overhead must be *observed over the run*.  A
:class:`MetricsSampler` is a simt process that wakes every ``interval``
simulated seconds, diffs the live registry against its previous
sample, and appends to bounded per-metric rings held by a
:class:`TimeSeriesRecorder`:

* **counters** are sampled as *deltas* (events this window),
* **gauges** as *levels* (the value when the sampler looked),
* **span aggregates** as *windowed rates* (busy seconds this window),
* **per-probe overhead** as the instrumentation seconds each probed
  function cost this window — the ranking signal a future adaptive
  controller consumes (see ROADMAP).

Samples are delta-encoded with the :mod:`repro.compact` varint codecs
(second-order deltas over IEEE-754 bit patterns, the trace codec's
framing), so a long run's series stays small and every float
round-trips bit-for-bit through :func:`decode_series`.

The lifecycle discipline is identical to the registry and the tracer:
the module-level recorder is the :data:`NULL_RECORDER` singleton until
someone calls :func:`enable` (or enters :func:`sampling`), and
:meth:`MetricsSampler.install` returns None — scheduling *nothing* —
when sampling is off.  That is a stronger guarantee than the
registry's: the sampler is the one observation layer that *does*
schedule simulated events when enabled, so "off" must mean zero
events, zero cost, and byte-identical figure output (pinned by the CLI
equivalence tests).  Enabled, the sampler only ever *reads* simulation
state, so payloads — and therefore figures — are still bit-identical;
only the obs metrics themselves (e.g. ``simt.events``) see the
sampler's own wakeups.
"""

from __future__ import annotations

import base64
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

# NB: repro.compact transitively imports repro.vt which imports
# repro.obs, so the varint codec import must stay inside the functions
# that encode/decode (the package-level import would be circular).

__all__ = [
    "SeriesRing",
    "TimeSeriesRecorder",
    "NullRecorder",
    "MetricsSampler",
    "NULL_RECORDER",
    "DEFAULT_INTERVAL",
    "DEFAULT_SERIES_CAPACITY",
    "get",
    "enable",
    "disable",
    "is_enabled",
    "sampling",
    "decode_series",
    "series_rows",
    "timeseries_to_csv",
    "overhead_series",
]

#: Default sampling interval (simulated seconds).
DEFAULT_INTERVAL = 0.25

#: Default per-series ring bound (samples); evictions are counted.
DEFAULT_SERIES_CAPACITY = 4096

#: Snapshot codec tag (second-order delta over bit patterns, base64).
_CODEC = "dod-varint-b64"

#: (name, pairs, inclusive_time, overhead_time) — one probed function's
#: cumulative totals, as returned by a probe-stats provider.
ProbeRow = Tuple[str, int, float, float]


class SeriesRing:
    """One metric's bounded (time, value) sample ring."""

    __slots__ = ("kind", "capacity", "times", "values", "dropped", "total")

    def __init__(self, kind: str, capacity: int) -> None:
        self.kind = kind
        self.capacity = capacity
        self.times: List[float] = []
        self.values: List[float] = []
        #: Samples evicted once the ring filled (never silent).
        self.dropped = 0
        #: Running sum of appended values — survives eviction, so the
        #: cumulative total of a delta/rate series stays exact even
        #: after the ring wraps.
        self.total = 0.0

    def append(self, t: float, value: float) -> None:
        if len(self.times) >= self.capacity:
            del self.times[0]
            del self.values[0]
            self.dropped += 1
        self.times.append(t)
        self.values.append(value)
        self.total += value

    def __len__(self) -> int:
        return len(self.times)

    def to_dict(self) -> Dict[str, Any]:
        """Delta-encoded JSON-safe form (lossless; see decode_series)."""
        from ..compact.varint import DeltaEncoder

        tbuf = bytearray()
        vbuf = bytearray()
        tenc = DeltaEncoder()
        venc = DeltaEncoder()
        tenc.encode_many(self.times, tbuf)
        venc.encode_many(self.values, vbuf)
        return {
            "kind": self.kind,
            "n": len(self.times),
            "dropped": self.dropped,
            "total": self.total,
            "codec": _CODEC,
            "t": base64.b64encode(bytes(tbuf)).decode("ascii"),
            "v": base64.b64encode(bytes(vbuf)).decode("ascii"),
        }


def decode_series(doc: Dict[str, Any]) -> Tuple[List[float], List[float]]:
    """Decode one series dict back to ``(times, values)`` lists.

    The codec is lossless: every float returned is bit-identical to the
    one sampled.
    """
    from ..compact.varint import DeltaDecoder

    if doc.get("codec") != _CODEC:
        raise ValueError(f"unknown series codec {doc.get('codec')!r}")
    n = int(doc["n"])
    times: List[float] = []
    values: List[float] = []
    for raw, out in ((doc["t"], times), (doc["v"], values)):
        data = base64.b64decode(raw)
        dec = DeltaDecoder()
        pos = 0
        for _ in range(n):
            value, pos = dec.decode(data, pos)
            out.append(value)
        if pos != len(data):
            raise ValueError("trailing bytes after series payload")
    return times, values


class TimeSeriesRecorder:
    """The per-run container of sampled series and probe profiles.

    Series names are prefixed by instrument kind — ``counter:<name>``,
    ``gauge:<name>``, ``span:<name>`` and ``probe:<function>`` — so one
    flat namespace carries the whole sampled run.
    """

    __slots__ = ("enabled", "interval", "capacity", "series", "probes",
                 "samples")

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        capacity: int = DEFAULT_SERIES_CAPACITY,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"sampling interval must be > 0, got {interval}")
        if capacity <= 0:
            raise ValueError(f"series capacity must be > 0, got {capacity}")
        #: Samplers test exactly this attribute before doing any work.
        self.enabled = True
        self.interval = interval
        self.capacity = capacity
        self.series: Dict[str, SeriesRing] = {}
        #: Cumulative per-probe totals: name -> {count, time, overhead}.
        self.probes: Dict[str, Dict[str, float]] = {}
        #: Sampler ticks recorded (including the terminal sample).
        self.samples = 0

    def record(self, name: str, kind: str, t: float, value: float) -> None:
        """Append one sample to series ``name`` (created on first use)."""
        ring = self.series.get(name)
        if ring is None:
            ring = self.series[name] = SeriesRing(kind, self.capacity)
        ring.append(t, value)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump: delta-encoded series + probe totals."""
        return {
            "version": 1,
            "interval": self.interval,
            "capacity": self.capacity,
            "samples": self.samples,
            "series": {k: self.series[k].to_dict()
                       for k in sorted(self.series)},
            "probes": {k: dict(self.probes[k]) for k in sorted(self.probes)},
        }

    def __repr__(self) -> str:
        return (f"<TimeSeriesRecorder interval={self.interval} "
                f"{len(self.series)} series, {self.samples} samples>")


class NullRecorder:
    """The disabled backend: sampling off means *no sampler exists*."""

    __slots__ = ()

    enabled = False
    interval = DEFAULT_INTERVAL
    capacity = DEFAULT_SERIES_CAPACITY
    samples = 0

    def record(self, name: str, kind: str, t: float, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"version": 1, "interval": self.interval,
                "capacity": self.capacity, "samples": 0,
                "series": {}, "probes": {}}

    def __repr__(self) -> str:
        return "<NullRecorder (sampling disabled)>"


#: The shared disabled backend.
NULL_RECORDER = NullRecorder()

_active: Any = NULL_RECORDER


def get() -> Any:
    """The current process-local recorder (the null backend when off)."""
    return _active


def enable(
    recorder: Optional[TimeSeriesRecorder] = None,
    interval: float = DEFAULT_INTERVAL,
    capacity: int = DEFAULT_SERIES_CAPACITY,
) -> TimeSeriesRecorder:
    """Install ``recorder`` (or a fresh one) as the current recorder.

    Like the registry, capture is at construction time: only samplers
    installed *after* this call record into it.
    """
    global _active
    if recorder is None:
        recorder = TimeSeriesRecorder(interval=interval, capacity=capacity)
    _active = recorder
    return recorder


def disable() -> Any:
    """Restore the null backend; returns the recorder that was active."""
    global _active
    previous = _active
    _active = NULL_RECORDER
    return previous


def is_enabled() -> bool:
    """True when a live recorder (not the null backend) is installed."""
    return _active.enabled


@contextmanager
def sampling(
    recorder: Optional[TimeSeriesRecorder] = None,
    interval: float = DEFAULT_INTERVAL,
    capacity: int = DEFAULT_SERIES_CAPACITY,
) -> Iterator[TimeSeriesRecorder]:
    """Run a block with a (fresh by default) recorder installed.

    Restores whatever was active before on exit, so a worker process
    can sample one sweep point without leaking state into the next.
    """
    global _active
    previous = _active
    if recorder is None:
        recorder = TimeSeriesRecorder(interval=interval, capacity=capacity)
    _active = recorder
    try:
        yield recorder
    finally:
        _active = previous


class MetricsSampler:
    """A simt process that samples a registry into a recorder.

    Construct (or :meth:`install`) it *after* the simulation's
    :class:`~repro.simt.Environment` exists and *before* the run
    starts; it captures the current recorder and registry, schedules a
    wakeup every ``recorder.interval`` simulated seconds, and diffs
    cumulative instruments into windowed samples.  ``probe_stats``, if
    given, is called at every tick and must return an iterable of
    cumulative ``(name, pairs, inclusive_time, overhead_time)`` rows;
    the sampler turns their overhead totals into per-probe delta
    series (``probe:<name>``) and keeps the latest cumulative row in
    :attr:`TimeSeriesRecorder.probes`.

    The expected shutdown sequence (see ``run_policy_job``)::

        sampler = MetricsSampler.install(env, probe_stats=...)
        env.run(until=job.completion())
        if sampler is not None:
            sampler.stop()      # withdraw the pending wakeup
        env.run()               # drain finalize flushes
        if sampler is not None:
            sampler.finish()    # terminal sample at env.now

    The terminal sample is what makes the series *cumulatively
    consistent*: the sum of every window's deltas telescopes to the
    end-of-run snapshot (to float-addition tolerance), which the
    ``overhead-timeline`` acceptance test pins.
    """

    def __init__(
        self,
        env: Any,
        recorder: Optional[Any] = None,
        registry: Optional[Any] = None,
        probe_stats: Optional[Callable[[], Iterable[ProbeRow]]] = None,
    ) -> None:
        from . import registry as _registry

        self.env = env
        self.recorder = recorder if recorder is not None else get()
        self.registry = registry if registry is not None else _registry.get()
        self.probe_stats = probe_stats
        self.enabled = bool(self.recorder.enabled)
        self._stopped = False
        self._finished = False
        self._pending: Any = None
        self._prev_counters: Dict[str, float] = {}
        self._prev_gauges: Dict[str, float] = {}
        self._prev_spans: Dict[str, Tuple[float, float]] = {}
        self._prev_probes: Dict[str, float] = {}
        if self.enabled:
            self.process = env.process(self._run(), name="obs.sampler")

    @classmethod
    def install(
        cls,
        env: Any,
        probe_stats: Optional[Callable[[], Iterable[ProbeRow]]] = None,
    ) -> Optional["MetricsSampler"]:
        """Attach a sampler iff sampling is enabled; None otherwise.

        The None return is the whole disabled-mode cost: no process is
        created, no event is scheduled, and the simulation is exactly
        the one a sampler-free build runs.
        """
        recorder = get()
        if not recorder.enabled:
            return None
        return cls(env, recorder=recorder, probe_stats=probe_stats)

    # -- the process -----------------------------------------------------------

    def _run(self):
        interval = self.recorder.interval
        while not self._stopped:
            wakeup = self.env.timeout(interval)
            self._pending = wakeup
            yield wakeup
            self._pending = None
            if self._stopped:
                break
            self.sample(self.env.now)

    def stop(self) -> None:
        """Withdraw the pending wakeup so the event queue can drain."""
        self._stopped = True
        if self._pending is not None:
            self.env.cancel(self._pending)
            self._pending = None

    def finish(self) -> None:
        """Take the terminal sample (idempotent; call after the drain)."""
        if self._finished or not self.enabled:
            return
        self._finished = True
        self._stopped = True
        self.sample(self.env.now)

    # -- one tick --------------------------------------------------------------

    def sample(self, now: float) -> None:
        """Diff the registry against the previous tick and record."""
        rec = self.recorder
        reg = self.registry
        # Counters: windowed deltas.  Zero windows are skipped — the
        # time axis carries the sample times, so sparse series still
        # cumulate exactly.
        prev_c = self._prev_counters
        for name, value in reg.counters.items():
            value = float(value)
            delta = value - prev_c.get(name, 0.0)
            if delta != 0.0:
                rec.record(f"counter:{name}", "delta", now, delta)
                prev_c[name] = value
        # Gauges: level samples, recorded when the level moved.
        prev_g = self._prev_gauges
        for name, value in reg.gauges.items():
            value = float(value)
            if prev_g.get(name) != value:
                rec.record(f"gauge:{name}", "level", now, value)
                prev_g[name] = value
        # Spans: windowed busy time (delta of the aggregate total).
        prev_s = self._prev_spans
        for name, agg in reg.spans.items():
            count, total = float(agg[0]), float(agg[1])
            pc, pt = prev_s.get(name, (0.0, 0.0))
            if total != pt or count != pc:
                rec.record(f"span:{name}", "rate", now, total - pt)
                prev_s[name] = (count, total)
        # Per-probe overhead attribution.
        if self.probe_stats is not None:
            prev_p = self._prev_probes
            for name, pairs, inclusive, overhead in self.probe_stats():
                delta = overhead - prev_p.get(name, 0.0)
                if delta != 0.0:
                    rec.record(f"probe:{name}", "delta", now, delta)
                    prev_p[name] = overhead
                rec.probes[name] = {
                    "count": pairs,
                    "time": inclusive,
                    "overhead": overhead,
                }
        rec.samples += 1
        if reg.enabled:
            # Meta-observability: the sampler's own tick count, visible
            # in the very registry it samples (the next window sees it
            # as a one-event delta — honest, and a useful liveness
            # signal in the exported series).
            reg.inc("obs.sampler_ticks")


# -- document helpers ------------------------------------------------------------


def series_rows(doc: Dict[str, Any]) -> Iterator[Tuple[str, str, float, float]]:
    """Yield ``(series, kind, t, value)`` rows from a recorder snapshot."""
    for name in sorted(doc.get("series", {})):
        sdoc = doc["series"][name]
        times, values = decode_series(sdoc)
        for t, v in zip(times, values):
            yield (name, sdoc["kind"], t, v)


def timeseries_to_csv(docs: Dict[str, Dict[str, Any]]) -> str:
    """Long-format CSV of per-label recorder snapshots."""
    lines = ["label,series,kind,t,value"]
    for label in sorted(docs):
        for name, kind, t, v in series_rows(docs[label]):
            lines.append(f"{label},{name},{kind},{t!r},{v!r}")
    return "\n".join(lines) + "\n"


#: Series that constitute instrumentation overhead, beyond the
#: per-probe event costs: trace-buffer flushes and dynprof patch
#: windows (the perturbation taxonomy of repro.obs.analysis).
OVERHEAD_SPAN_SERIES = ("span:vt.flush", "span:dynprof.patch")


def overhead_series(doc: Dict[str, Any]) -> Tuple[List[float], List[float]]:
    """The cumulative instrumentation-overhead curve of one snapshot.

    Merges every ``probe:*`` delta series with the overhead span series
    (:data:`OVERHEAD_SPAN_SERIES`) into one time-ordered cumulative sum
    of instrumentation seconds.  Returns ``(times, cumulative)``.
    """
    points: List[Tuple[float, float]] = []
    for name, sdoc in doc.get("series", {}).items():
        if name.startswith("probe:") or name in OVERHEAD_SPAN_SERIES:
            times, values = decode_series(sdoc)
            points.extend(zip(times, values))
    points.sort(key=lambda p: p[0])
    times: List[float] = []
    cumulative: List[float] = []
    running = 0.0
    for t, v in points:
        running += v
        if times and times[-1] == t:
            cumulative[-1] = running
        else:
            times.append(t)
            cumulative.append(running)
    return times, cumulative
