"""repro.obs — metrics and span tracing for the simulator itself.

The paper's thesis is that observing a running parallel program must be
cheap and toggleable at runtime; the same constraint applies to
observing this simulator.  ``repro.obs`` is a process-local metrics
registry (counters, gauges, fixed-bucket histograms) plus lightweight
span tracing of simulator phases (MPI wire time, VT buffer flushes,
dynprof patch windows), with a null backend so that when observation is
disabled — the default — every instrumented hot path pays exactly one
attribute check.

Enabling is explicit and capture-at-construction::

    from repro import obs

    registry = obs.enable()          # or obs.collecting() as a context
    env = Environment()              # built under the live registry
    ... run a simulation ...
    doc = registry.snapshot()        # JSON-safe metrics document
    obs.disable()

The sweep runner exposes the same mechanism per point
(``SweepRunner(collect_obs=True)``), and the CLI as
``repro-experiments ... --obs metrics.json``.  Observation never
perturbs the simulation: no costs, no RNG draws, no events — figure
outputs are bit-identical with it on or off (pinned by tests).

:mod:`repro.obs.trace` is the causal sibling of the metrics registry:
per-(rank, thread) event tracks with spans, instants and flow edges in
bounded ring buffers, behind the same enable/NULL-backend discipline
(``trace.tracing()`` / ``SweepRunner(collect_trace=True)`` / the CLI's
``--trace DIR``).  :mod:`repro.obs.export` turns a trace document into
Chrome trace-event JSON (Perfetto-loadable) or a static SVG timeline;
:mod:`repro.obs.analysis` extracts per-track utilization, the critical
path over the span + flow-edge DAG, and the perturbation-attribution
report.

:mod:`repro.obs.timeseries` adds the time dimension: a
``MetricsSampler`` simt process samples the live registry at a
configurable simulated-time interval into bounded, delta-encoded
per-metric series (``timeseries.sampling()`` / ``--obs-sample SEC`` on
the CLI), with per-probe overhead attribution for the dynamic
policies.  :mod:`repro.obs.prom` renders any snapshot in Prometheus
text exposition format for the svc daemons' live ``/metrics``
endpoints.

See ``docs/observability.md`` for the metric name catalogue and
``docs/tracing.md`` for the trace event model.
"""

from . import prom, timeseries, trace
from .registry import (
    NULL,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    collecting,
    disable,
    enable,
    get,
    is_enabled,
    merge_snapshots,
)

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "Histogram",
    "NULL",
    "get",
    "enable",
    "disable",
    "is_enabled",
    "collecting",
    "merge_snapshots",
    "trace",
    "timeseries",
    "prom",
]
