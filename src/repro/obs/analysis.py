"""Trace analysis: utilization, critical path, perturbation attribution.

Works directly on the JSON-safe documents :meth:`Tracer.snapshot`
produces (the same objects that ride the worker envelope and land in
``<label>.trace.json``), so a trace can be analysed in-process right
after a run or reloaded from disk later.

* :func:`track_utilization` — per-track busy time (union of recorded
  spans) over the traced interval;
* :func:`critical_path` — a backward walk over the span + flow-edge
  DAG from the last recorded event, hopping tracks along flow edges
  (a rank that was idle before a delivery was *waiting on the
  sender*, so the path continues there);
* :func:`perturbation_report` — where the instrumentation overhead
  went: probe events, trampolines, VT buffer flushes, patch windows
  and suspensions vs. application compute — the quantitative form of
  the paper's Figure 7/8 perturbation story.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .trace import TOOL_PID

__all__ = [
    "flow_pairs",
    "track_utilization",
    "critical_path",
    "perturbation_report",
    "render_trace_summary",
]

#: Categories attributed to instrumentation (not application compute).
INSTRUMENTATION_CATEGORIES = (
    "vt.flush",
    "vt.confsync",
    "dynprof",
    "suspended",
)


def _check(doc: Dict[str, Any]) -> None:
    if doc.get("kind") != "repro.trace":
        raise ValueError("not a repro trace document")


def _span_bounds(doc: Dict[str, Any]) -> Tuple[float, float]:
    t0, t1 = float("inf"), float("-inf")
    for track in doc["tracks"]:
        for ev in track["events"]:
            t0 = min(t0, ev["ts"])
            t1 = max(t1, ev["ts"] + ev.get("dur", 0.0))
    if t1 <= t0:
        return 0.0, 0.0
    return t0, t1


def flow_pairs(doc: Dict[str, Any]) -> Dict[int, Dict[str, List[Dict[str, Any]]]]:
    """Flow id -> its start and end events (each annotated with pid/tid).

    The integrity property the test suite pins: in a run with no ring
    drops every flow id has exactly one start, and every end references
    an existing start.
    """
    _check(doc)
    pairs: Dict[int, Dict[str, List[Dict[str, Any]]]] = {}
    for track in doc["tracks"]:
        for ev in track["events"]:
            if ev["ph"] not in ("fs", "ff"):
                continue
            entry = pairs.setdefault(ev["id"], {"starts": [], "ends": []})
            side = "starts" if ev["ph"] == "fs" else "ends"
            side_ev = dict(ev)
            side_ev["pid"] = track["pid"]
            side_ev["tid"] = track["tid"]
            entry[side].append(side_ev)
    return pairs


def track_utilization(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Per-track busy time: the union of recorded spans over the traced
    interval (overlapping/nested spans are not double-counted)."""
    _check(doc)
    t0, t1 = _span_bounds(doc)
    elapsed = t1 - t0
    rows: List[Dict[str, Any]] = []
    for track in doc["tracks"]:
        intervals = sorted(
            (ev["ts"], ev["ts"] + ev.get("dur", 0.0))
            for ev in track["events"] if ev["ph"] == "span"
        )
        busy = 0.0
        cursor = float("-inf")
        for s, e in intervals:
            if s > cursor:
                busy += e - s
                cursor = e
            elif e > cursor:
                busy += e - cursor
                cursor = e
        rows.append({
            "pid": track["pid"],
            "tid": track["tid"],
            "name": track["name"],
            "events": len(track["events"]),
            "dropped": track["dropped"],
            "busy": busy,
            "elapsed": elapsed,
            "utilization": busy / elapsed if elapsed > 0 else 0.0,
        })
    return rows


def critical_path(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Extract the critical path through the span + flow-edge DAG.

    Backward walk from the globally last-ending event: on each track the
    path consumes the latest event finishing at or before the cursor; a
    flow end switches the walk to the track (and time) of the matching
    flow start — the delivery could not have happened before the send.
    Deterministic (ring order breaks timestamp ties) and linear in the
    number of recorded events.

    Returns ``{"path": [...], "elapsed", "span_time", "by_category",
    "tracks_visited"}`` with the path in chronological order.
    """
    _check(doc)
    # Per-track event lists in (ts, emission-order) order, plus the
    # flow-start location index for the track hops.
    tracks: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
    flow_start_at: Dict[int, Tuple[Tuple[int, int], int]] = {}
    for track in doc["tracks"]:
        key = (track["pid"], track["tid"])
        events = [dict(ev) for ev in track["events"]]
        for ev in events:
            ev["_end"] = ev["ts"] + ev.get("dur", 0.0)
            ev["_track"] = key
            ev["_name"] = track["name"]
        events.sort(key=lambda e: e["_end"])
        for i, ev in enumerate(events):
            ev["_idx"] = i
            if ev["ph"] == "fs":
                flow_start_at.setdefault(ev["id"], (key, i))
        tracks[key] = events

    # The globally last-ending event starts the walk.
    last: Optional[Dict[str, Any]] = None
    for events in tracks.values():
        if events and (last is None or events[-1]["_end"] > last["_end"]):
            last = events[-1]
    if last is None:
        return {"path": [], "elapsed": 0.0, "span_time": 0.0,
                "by_category": {}, "tracks_visited": 0}

    path: List[Dict[str, Any]] = []
    cur = last
    visited_tracks = {cur["_track"]}
    guard = sum(len(evs) for evs in tracks.values()) + 1
    while cur is not None and guard > 0:
        guard -= 1
        path.append(cur)
        if cur["ph"] == "ff" and cur["id"] in flow_start_at:
            key, idx = flow_start_at[cur["id"]]
            cur = tracks[key][idx]
            visited_tracks.add(key)
            continue
        # Latest event on the same track ending at or before this one
        # starts (spans) / happens (points).
        events = tracks[cur["_track"]]
        horizon = cur["ts"]
        prev = None
        for i in range(cur["_idx"] - 1, -1, -1):
            if events[i]["_end"] <= horizon:
                prev = events[i]
                break
        cur = prev

    path.reverse()
    by_cat: Dict[str, float] = {}
    for ev in path:
        if ev["ph"] == "span":
            dur = ev.get("dur", 0.0)
            by_cat[ev["cat"]] = by_cat.get(ev["cat"], 0.0) + dur
    return {
        "path": [
            {
                "pid": ev["_track"][0],
                "tid": ev["_track"][1],
                "track": ev["_name"],
                "ph": ev["ph"],
                "name": ev["name"],
                "cat": ev["cat"],
                "ts": ev["ts"],
                "dur": ev.get("dur", 0.0),
            }
            for ev in path
        ],
        "elapsed": path[-1]["_end"] - path[0]["ts"] if path else 0.0,
        "span_time": sum(by_cat.values()),
        "by_category": dict(sorted(by_cat.items())),
        "tracks_visited": len(visited_tracks),
    }


def perturbation_report(doc: Dict[str, Any],
                        elapsed: Optional[float] = None) -> Dict[str, Any]:
    """Attribute instrumentation perturbation from the drop-immune
    aggregates: probe events, trampoline traversals, VT flushes, patch
    windows, suspensions — vs. everything else (application compute).

    ``elapsed`` is the run's simulated duration (per rank, the paper's
    reported program time); defaults to the traced interval.  The
    component times are summed over every rank, so they are compared
    against ``elapsed`` times the number of rank tracks (CPU-seconds).
    The aggregates come from :attr:`Tracer.totals` and
    :attr:`Tracer.counts`, so ring-buffer eviction never skews them.
    """
    _check(doc)
    totals = doc.get("totals", {})
    counts = doc.get("counts", {})
    if elapsed is None:
        t0, t1 = _span_bounds(doc)
        elapsed = t1 - t0
    ranks = len({t["pid"] for t in doc["tracks"] if t["pid"] != TOOL_PID})
    ranks = max(ranks, 1)
    cpu_seconds = elapsed * ranks

    def total_of(prefix: str) -> float:
        return sum(
            v["total"] for cat, v in totals.items()
            if cat == prefix or cat.startswith(prefix + ".")
        )

    components = {
        "probes": float(counts.get("vt.probe_time", 0.0)),
        "trampolines": float(counts.get("tramp.time", 0.0)),
        "vt_flushes": total_of("vt.flush"),
        "confsync": total_of("vt.confsync"),
        "patch_windows": total_of("dynprof"),
        "suspended": total_of("suspended"),
    }
    instrumentation = sum(components.values())
    application = max(cpu_seconds - instrumentation, 0.0)
    return {
        "elapsed": elapsed,
        "ranks": ranks,
        "cpu_seconds": cpu_seconds,
        "components": components,
        "event_counts": {
            "probe_events": counts.get("vt.probe_events", 0),
            "trampoline_firings": counts.get("tramp.firings", 0),
            "vt_records": counts.get("vt.records", 0),
        },
        "instrumentation_time": instrumentation,
        "application_time": application,
        "instrumented_share": (
            instrumentation / cpu_seconds if cpu_seconds > 0 else 0.0
        ),
    }


def render_trace_summary(doc: Dict[str, Any],
                         elapsed: Optional[float] = None,
                         top: int = 12) -> str:
    """Human-readable critical-path + perturbation summary of a trace."""
    _check(doc)
    util = track_utilization(doc)
    cp = critical_path(doc)
    pert = perturbation_report(doc, elapsed=elapsed)
    lines = [
        f"trace: {len(doc['tracks'])} tracks, "
        f"{sum(r['events'] for r in util)} events recorded, "
        f"{doc.get('dropped_events', 0)} dropped "
        f"(detail={doc.get('detail')}, capacity={doc.get('capacity')})",
        "",
        f"{'track':<16s} {'events':>7s} {'dropped':>8s} {'busy(s)':>10s} {'util':>7s}",
        "-" * 52,
    ]
    for r in util:
        lines.append(
            f"{r['name']:<16.16s} {r['events']:>7d} {r['dropped']:>8d} "
            f"{r['busy']:>10.4f} {r['utilization']:>6.1%}"
        )
    lines += [
        "",
        f"critical path: {len(cp['path'])} events across "
        f"{cp['tracks_visited']} track(s), {cp['elapsed']:.4f}s elapsed, "
        f"{cp['span_time']:.4f}s in recorded spans",
    ]
    for cat, t in cp["by_category"].items():
        lines.append(f"  {cat:<24s} {t:>10.4f}s on path")
    tail = cp["path"][-top:]
    if tail:
        lines.append(f"  last {len(tail)} events on the path:")
        for ev in tail:
            lines.append(
                f"    {ev['ts']:>10.4f}s {ev['track']:<12.12s} "
                f"{ev['ph']:<4s} {ev['name']} [{ev['cat']}]"
            )
    lines += [
        "",
        f"perturbation attribution over {pert['elapsed']:.4f}s x "
        f"{pert['ranks']} rank(s) = {pert['cpu_seconds']:.4f} CPU-s:",
    ]
    denom = pert["cpu_seconds"]
    for name, t in pert["components"].items():
        share = t / denom if denom > 0 else 0.0
        lines.append(f"  {name:<16s} {t:>10.4f}s  {share:>6.2%}")
    lines += [
        f"  {'application':<16s} {pert['application_time']:>10.4f}s  "
        f"{1 - pert['instrumented_share']:>6.2%}",
        f"  instrumentation share: {pert['instrumented_share']:.2%} "
        f"({pert['event_counts']['probe_events']:,} probe events, "
        f"{pert['event_counts']['trampoline_firings']:,} trampoline "
        f"firings, {pert['event_counts']['vt_records']:,} VT records)",
    ]
    return "\n".join(lines) + "\n"
