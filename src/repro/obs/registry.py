"""The process-local metrics registry and its null backend.

Every instrument lives in one :class:`MetricsRegistry`:

* **counters** — monotonically increasing totals (events processed,
  records appended, probes installed);
* **gauges** — level samples kept as high-water marks via
  :meth:`MetricsRegistry.gauge_max` (queue depths) or plain values via
  :meth:`MetricsRegistry.gauge_set`;
* **histograms** — fixed, caller-supplied bucket edges so two runs of
  the same simulation bucket identically (no adaptive resizing);
* **spans** — named phase durations (simulated seconds), aggregated as
  (count, total, max) so tracing a million wire deliveries stays O(1)
  in memory.

The registry never touches the simulation: it charges no cost, draws no
randomness, and schedules no events, so figures are bit-identical with
observation on or off.  When observation is off the module-level
registry is the :data:`NULL` singleton, whose ``enabled`` attribute is
False — hot paths guard every instrument behind that single attribute
check and otherwise pay nothing.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "Histogram",
    "NULL",
    "get",
    "enable",
    "disable",
    "is_enabled",
    "collecting",
    "merge_snapshots",
]


class Histogram:
    """A fixed-bucket histogram.

    ``edges`` are the inclusive upper bounds of the first ``len(edges)``
    buckets; one overflow bucket catches everything above the last edge.
    Edges are frozen at creation — determinism comes from never
    rebucketing.
    """

    __slots__ = ("edges", "counts", "count", "total")

    def __init__(self, edges: Sequence[float]) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram edges must be sorted and non-empty: {edges!r}")
        self.edges: Tuple[float, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
        }


class MetricsRegistry:
    """Process-local counters, gauges, histograms and span aggregates."""

    __slots__ = ("enabled", "counters", "gauges", "histograms", "spans")

    def __init__(self) -> None:
        #: Hot paths test exactly this attribute before instrumenting.
        self.enabled = True
        self.counters: Dict[str, Union[int, float]] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: name -> [count, total, max] of simulated-seconds durations.
        self.spans: Dict[str, List[float]] = {}

    # -- instruments ----------------------------------------------------------

    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        # try/except beats .get() here: counter names repeat, so the
        # KeyError path runs once per name and the hot path is a single
        # dict item operation.
        try:
            self.counters[name] += n
        except KeyError:
            self.counters[name] = n

    def gauge_set(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest observed value."""
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Keep gauge ``name`` as a high-water mark of observed values."""
        prev = self.gauges.get(name)
        if prev is None or value > prev:
            self.gauges[name] = value

    def observe(self, name: str, value: float, edges: Sequence[float]) -> None:
        """Record ``value`` in histogram ``name`` (created with ``edges``
        on first use; later ``edges`` arguments are ignored)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(edges)
        hist.observe(value)

    def span(self, name: str, duration: float) -> None:
        """Record one completed span of ``duration`` (simulated seconds)."""
        agg = self.spans.get(name)
        if agg is None:
            self.spans[name] = [1, duration, duration]
        else:
            agg[0] += 1
            agg[1] += duration
            if duration > agg[2]:
                agg[2] = duration

    # -- export / merge -------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe dump of every instrument, keys sorted for stability."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_dict() for k in sorted(self.histograms)
            },
            "spans": {
                k: {"count": int(v[0]), "total": v[1], "max": v[2]}
                for k, v in sorted(self.spans.items())
            },
        }

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and span counts/totals add; gauges and span maxima take
        the maximum; histogram bucket counts add when the edges agree
        (mismatched edges replace nothing and raise, since silently
        dropping data would misreport coverage).
        """
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge_max(name, value)
        for name, h in snap.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram(h["edges"])
            elif list(hist.edges) != list(h["edges"]):
                raise ValueError(
                    f"histogram {name!r}: cannot merge edges {h['edges']} "
                    f"into {list(hist.edges)}"
                )
            if len(h["counts"]) != len(hist.counts):
                # zip() would silently truncate a malformed bucket array,
                # under-reporting the very coverage this layer measures.
                raise ValueError(
                    f"histogram {name!r}: snapshot has "
                    f"{len(h['counts'])} bucket counts, expected "
                    f"{len(hist.counts)}"
                )
            hist.counts = [a + b for a, b in zip(hist.counts, h["counts"])]
            hist.count += h["count"]
            hist.total += h["total"]
        for name, s in snap.get("spans", {}).items():
            agg = self.spans.get(name)
            if agg is None:
                self.spans[name] = [s["count"], s["total"], s["max"]]
            else:
                agg[0] += s["count"]
                agg[1] += s["total"]
                if s["max"] > agg[2]:
                    agg[2] = s["max"]

    def reset(self) -> None:
        """Drop every instrument (a fresh registry, same identity)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms, "
            f"{len(self.spans)} spans>"
        )


class NullRegistry:
    """The disabled backend: same surface, every method a no-op.

    Instrumented code holds a reference to whichever registry was
    current when it was built and tests ``registry.enabled`` before
    doing any work, so with observation off the entire obs layer costs
    one attribute check per hot-path visit.
    """

    __slots__ = ()

    enabled = False

    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        pass

    def gauge_set(self, name: str, value: float) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float, edges: Sequence[float]) -> None:
        pass

    def span(self, name: str, duration: float) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "spans": {}}

    def merge_snapshot(self, snap: Dict[str, Any]) -> None:
        pass

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullRegistry (observation disabled)>"


#: The shared disabled backend.
NULL = NullRegistry()

#: The process-local current registry; NULL until someone enables obs.
_active: Union[MetricsRegistry, NullRegistry] = NULL


def get() -> Union[MetricsRegistry, NullRegistry]:
    """The current process-local registry (the null backend when off)."""
    return _active


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install ``registry`` (or a fresh one) as the current registry.

    Only objects *constructed after* this call observe into it: hot-path
    components capture the registry once at construction time.
    """
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> Union[MetricsRegistry, NullRegistry]:
    """Restore the null backend; returns the registry that was active."""
    global _active
    previous = _active
    _active = NULL
    return previous


def is_enabled() -> bool:
    """True when a live registry (not the null backend) is installed."""
    return _active.enabled


@contextmanager
def collecting(
    registry: Optional[MetricsRegistry] = None,
) -> Iterator[MetricsRegistry]:
    """Run a block with a (fresh by default) registry installed.

    Restores whatever was active before on exit, so a worker process
    can observe one sweep point without leaking state into the next.
    """
    global _active
    previous = _active
    _active = registry if registry is not None else MetricsRegistry()
    try:
        yield _active
    finally:
        _active = previous


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge many :meth:`MetricsRegistry.snapshot` dicts into one."""
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge_snapshot(snap)
    return merged.snapshot()
