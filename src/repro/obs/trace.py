"""Causal event tracing of the simulator — the *what happened when* layer.

:mod:`repro.obs.registry` answers "how much"; this module answers
"when, on which rank, caused by what".  One :class:`Tracer` records,
per (pid, tid) **track**:

* **spans** — named intervals in simulated seconds (a VT buffer flush,
  a confsync epoch, a dynprof patch window, a traced function body);
* **instant events** — point-in-time marks (a probe installed, a
  configuration epoch applied);
* **flow edges** — directed links between causally related events on
  different tracks: an ``MPI_Send`` and the delivery of its envelope,
  a dynprof patch and the processes it landed in.

Every track stores its events in a **bounded ring buffer**: once
``capacity`` events have accumulated the oldest are evicted and the
track's ``dropped`` counter ticks — trace volume is a first-class,
measured quantity, exactly the constraint the paper's trace formats
live under.  Aggregates that must survive eviction (per-category span
totals, raw-record counts for the trace-volume model) are kept in
drop-immune side tables (:attr:`Tracer.totals`, :attr:`Tracer.counts`).

The lifecycle discipline is identical to the metrics registry: the
module-level tracer is the :data:`NULL_TRACER` singleton until someone
calls :func:`enable` (or enters :func:`tracing`); instrumented
components capture the tracer **once at construction** and guard every
emission behind the single ``tracer.enabled`` attribute check, so with
tracing off the whole layer costs one attribute load per hot-path
visit and the simulation itself is never perturbed — no costs, no RNG
draws, no events; figure outputs are bit-identical either way.

The ``detail`` knob selects between ``"fine"`` (everything, including
per-function spans from the VT probe path) and ``"coarse"``
(subsystem-level spans and flows only) — the same volume/visibility
trade the paper's deactivation tables implement for real traces.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "Tracer",
    "NullTracer",
    "TraceEvent",
    "TrackBuffer",
    "NULL_TRACER",
    "TOOL_PID",
    "DEFAULT_CAPACITY",
    "get",
    "enable",
    "disable",
    "is_enabled",
    "tracing",
]

#: Default per-track ring-buffer capacity (events).
DEFAULT_CAPACITY = 65536

#: Reserved pid for the monitoring tool's own track (dynprof sessions);
#: rank tracks use their MPI rank / process index as pid.
TOOL_PID = 1_000_000

#: Event phases stored in the ring (mnemonic, JSON-stable):
#: "span" complete span, "inst" instant, "fs" flow start, "ff" flow end.
SPAN = "span"
INSTANT = "inst"
FLOW_START = "fs"
FLOW_END = "ff"


class TraceEvent:
    """One recorded event on one track."""

    __slots__ = ("ph", "name", "cat", "ts", "dur", "args", "flow")

    def __init__(
        self,
        ph: str,
        name: str,
        cat: str,
        ts: float,
        dur: float = 0.0,
        args: Optional[Dict[str, Any]] = None,
        flow: Optional[int] = None,
    ) -> None:
        self.ph = ph
        self.name = name
        self.cat = cat
        self.ts = ts
        self.dur = dur
        self.args = args
        self.flow = flow

    @property
    def end(self) -> float:
        return self.ts + self.dur

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"ph": self.ph, "name": self.name,
                             "cat": self.cat, "ts": self.ts}
        if self.ph == SPAN:
            d["dur"] = self.dur
        if self.flow is not None:
            d["id"] = self.flow
        if self.args:
            d["args"] = self.args
        return d

    def __repr__(self) -> str:
        return f"<TraceEvent {self.ph} {self.name!r} t={self.ts:.6f}>"


class TrackBuffer:
    """The bounded event ring of one (pid, tid) track."""

    __slots__ = ("pid", "tid", "name", "capacity", "events", "dropped",
                 "compact", "folded", "_stack")

    def __init__(self, pid: int, tid: int, name: str, capacity: int,
                 compact: bool = False) -> None:
        if capacity < 1:
            raise ValueError(f"track capacity must be >= 1, got {capacity}")
        self.pid = pid
        self.tid = tid
        self.name = name
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        #: Events evicted from the ring (the paper's lost-data honesty).
        self.dropped = 0
        #: Compact-on-full: fold repeated event subsequences before
        #: evicting anything (see :mod:`repro.compact.suppress`).
        self.compact = compact
        #: Events absorbed into folds (their counts live on in the
        #: survivors' ``args["folded"]``) — degraded, not lost.
        self.folded = 0
        #: Open begin() marks awaiting their end() (name, cat, ts, args).
        self._stack: List[Tuple[str, str, float, Optional[Dict[str, Any]]]] = []

    def append(self, event: TraceEvent) -> None:
        if len(self.events) == self.capacity:
            if not self.compact or self._fold() == 0:
                self.dropped += 1
        self.events.append(event)

    def _fold(self) -> int:
        """Compact the ring in place; returns the number of slots freed.

        Repeated subsequences of span/instant events (same name and
        category) collapse into their first iteration's events, each
        annotated with ``args["folded"]`` = the total occurrence count
        and, for spans, stretched to cover the folded extent — so a
        full ring sheds redundancy before it sheds information.
        """
        from ..compact.suppress import fold_ring

        events = list(self.events)
        folded = fold_ring(events, _fold_key, _merge_fold)
        freed = len(events) - len(folded)
        if freed:
            self.folded += freed
            self.events.clear()
            self.events.extend(folded)
        return freed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pid": self.pid,
            "tid": self.tid,
            "name": self.name,
            "dropped": self.dropped,
            "folded": self.folded,
            "open_spans": len(self._stack),
            "events": [e.to_dict() for e in self.events],
        }

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return (
            f"<TrackBuffer {self.name!r} {len(self.events)} events, "
            f"{self.dropped} dropped>"
        )


def _fold_key(event: TraceEvent) -> Tuple[Any, ...]:
    """Structural identity for ring folding (timestamps excluded).

    Flow edge ids are deliberately *not* part of the key: a timestep
    loop emits a fresh id per iteration, so keying on them would block
    every fold containing communication.  The merged survivor keeps the
    first iteration's id; later edges dissolve into the fold count —
    the same information loss eviction would cause, minus the survivor.
    """
    return (event.ph, event.name, event.cat)


def _fold_count(event: TraceEvent) -> int:
    args = event.args
    if args is not None:
        folded = args.get("folded")
        if isinstance(folded, int):
            return folded
    return 1


def _merge_fold(fold) -> List[TraceEvent]:
    """Collapse a fold to its first iteration, counts preserved.

    Each surviving event carries ``args["folded"]`` = how many
    occurrences it stands for (re-folding an already-folded survivor
    sums the counts); spans stretch to the folded extent so the
    timeline still covers the right interval.
    """
    iterations = fold.iterations
    first, last = iterations[0], iterations[-1]
    merged: List[TraceEvent] = []
    for j, event in enumerate(first):
        count = sum(_fold_count(it[j]) for it in iterations)
        args = dict(event.args) if event.args else {}
        args["folded"] = count
        # Batch spans carry their iteration count in args["n"]; keep
        # the total exact across a fold.
        if isinstance(args.get("n"), int):
            args["n"] = sum(
                it[j].args["n"] for it in iterations
                if it[j].args and isinstance(it[j].args.get("n"), int)
            )
        dur = event.dur
        if event.ph == SPAN:
            dur = max(dur, last[j].end - event.ts)
        merged.append(TraceEvent(event.ph, event.name, event.cat,
                                 event.ts, dur, args, event.flow))
    return merged


class Tracer:
    """Process-local causal tracer (the live backend)."""

    __slots__ = ("enabled", "detail", "fine", "capacity", "compact",
                 "tracks", "totals", "counts", "_next_flow")

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 detail: str = "fine", compact: bool = False) -> None:
        if detail not in ("fine", "coarse"):
            raise ValueError(f"detail must be 'fine' or 'coarse': {detail!r}")
        if capacity < 1:
            raise ValueError(f"tracer capacity must be >= 1, got {capacity}")
        #: Hot paths test exactly this attribute before emitting.
        self.enabled = True
        self.detail = detail
        #: Pre-resolved detail flag so per-function sites pay one load.
        self.fine = detail == "fine"
        self.capacity = capacity
        #: Fold repeated event subsequences when a ring fills, instead
        #: of evicting immediately (repro.compact ring compaction).
        self.compact = compact
        self.tracks: Dict[Tuple[int, int], TrackBuffer] = {}
        #: category -> [span_count, total_duration]; immune to ring drops.
        self.totals: Dict[str, List[float]] = {}
        #: named counters immune to ring drops (trace-volume model inputs).
        self.counts: Dict[str, Union[int, float]] = {}
        self._next_flow = 0

    # -- tracks ---------------------------------------------------------------

    def track(self, pid: int, tid: int = 0,
              name: Optional[str] = None) -> TrackBuffer:
        """The (pid, tid) track, created (and optionally named) on first use."""
        key = (pid, tid)
        buf = self.tracks.get(key)
        if buf is None:
            if name is None:
                name = f"rank {pid}" if tid == 0 else f"rank {pid}.t{tid}"
            buf = self.tracks[key] = TrackBuffer(pid, tid, name, self.capacity,
                                                 compact=self.compact)
        elif name is not None:
            buf.name = name
        return buf

    # -- emission -------------------------------------------------------------

    def begin(self, pid: int, tid: int, name: str, cat: str, ts: float,
              args: Optional[Dict[str, Any]] = None) -> None:
        """Open a span on a track; closed (and recorded) by :meth:`end`."""
        self._track(pid, tid)._stack.append((name, cat, ts, args))

    def end(self, pid: int, tid: int, ts: float) -> None:
        """Close the innermost open span on a track.

        An end with no matching begin is ignored (asymmetric
        instrumentation tolerance, as in the VT shadow stack).
        """
        buf = self._track(pid, tid)
        if not buf._stack:
            return
        name, cat, t0, args = buf._stack.pop()
        self._emit_span(buf, name, cat, t0, max(ts, t0), args)

    def complete(self, pid: int, tid: int, name: str, cat: str,
                 t0: float, t1: float,
                 args: Optional[Dict[str, Any]] = None) -> None:
        """Record a span whose both ends are already known."""
        self._emit_span(self._track(pid, tid), name, cat, t0, max(t1, t0), args)

    def instant(self, pid: int, tid: int, name: str, cat: str, ts: float,
                args: Optional[Dict[str, Any]] = None) -> None:
        """Record a point-in-time event."""
        self._track(pid, tid).append(TraceEvent(INSTANT, name, cat, ts, 0.0, args))

    # -- flow edges -----------------------------------------------------------

    def new_flow(self) -> int:
        """A fresh flow id linking one causal pair (or fan-out set)."""
        self._next_flow += 1
        return self._next_flow

    def flow_start(self, pid: int, tid: int, flow: int, name: str, cat: str,
                   ts: float, args: Optional[Dict[str, Any]] = None) -> None:
        """The cause end of a flow edge (e.g. the send)."""
        self._track(pid, tid).append(
            TraceEvent(FLOW_START, name, cat, ts, 0.0, args, flow)
        )

    def flow_end(self, pid: int, tid: int, flow: int, name: str, cat: str,
                 ts: float, args: Optional[Dict[str, Any]] = None) -> None:
        """The effect end of a flow edge (e.g. the matching delivery)."""
        self._track(pid, tid).append(
            TraceEvent(FLOW_END, name, cat, ts, 0.0, args, flow)
        )

    # -- drop-immune aggregates ----------------------------------------------

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        """Add ``n`` to a drop-immune counter (e.g. raw VT records)."""
        self.counts[name] = self.counts.get(name, 0) + n

    # -- internals ------------------------------------------------------------

    def _track(self, pid: int, tid: int) -> TrackBuffer:
        buf = self.tracks.get((pid, tid))
        if buf is None:
            buf = self.track(pid, tid)
        return buf

    def _emit_span(self, buf: TrackBuffer, name: str, cat: str,
                   t0: float, t1: float,
                   args: Optional[Dict[str, Any]]) -> None:
        buf.append(TraceEvent(SPAN, name, cat, t0, t1 - t0, args))
        agg = self.totals.get(cat)
        if agg is None:
            self.totals[cat] = [1, t1 - t0]
        else:
            agg[0] += 1
            agg[1] += t1 - t0

    # -- export ---------------------------------------------------------------

    @property
    def dropped_events(self) -> int:
        """Total events evicted from all ring buffers."""
        return sum(b.dropped for b in self.tracks.values())

    @property
    def folded_events(self) -> int:
        """Total events absorbed into ring folds (degraded, not lost)."""
        return sum(b.folded for b in self.tracks.values())

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe trace document (the worker-envelope payload)."""
        return {
            "kind": "repro.trace",
            "version": 1,
            "clock": "simulated-seconds",
            "detail": self.detail,
            "capacity": self.capacity,
            "compact": self.compact,
            "dropped_events": self.dropped_events,
            "folded_events": self.folded_events,
            "tracks": [
                self.tracks[k].to_dict() for k in sorted(self.tracks)
            ],
            "totals": {
                cat: {"count": int(v[0]), "total": v[1]}
                for cat, v in sorted(self.totals.items())
            },
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
        }

    def reset(self) -> None:
        """Drop every track and aggregate (a fresh tracer, same identity)."""
        self.tracks.clear()
        self.totals.clear()
        self.counts.clear()
        self._next_flow = 0

    def __repr__(self) -> str:
        n = sum(len(b) for b in self.tracks.values())
        return (
            f"<Tracer {len(self.tracks)} tracks, {n} events, "
            f"{self.dropped_events} dropped, detail={self.detail}>"
        )


class NullTracer:
    """The disabled backend: same surface, every method a no-op.

    ``fine`` is False so even the per-function fast-path guard
    (``tracer.enabled and tracer.fine``) short-circuits on the first
    attribute load.
    """

    __slots__ = ()

    enabled = False
    fine = False
    detail = "off"
    dropped_events = 0
    folded_events = 0
    compact = False

    def track(self, pid: int, tid: int = 0,
              name: Optional[str] = None) -> None:
        return None

    def begin(self, pid: int, tid: int, name: str, cat: str, ts: float,
              args: Optional[Dict[str, Any]] = None) -> None:
        pass

    def end(self, pid: int, tid: int, ts: float) -> None:
        pass

    def complete(self, pid: int, tid: int, name: str, cat: str,
                 t0: float, t1: float,
                 args: Optional[Dict[str, Any]] = None) -> None:
        pass

    def instant(self, pid: int, tid: int, name: str, cat: str, ts: float,
                args: Optional[Dict[str, Any]] = None) -> None:
        pass

    def new_flow(self) -> int:
        return 0

    def flow_start(self, pid: int, tid: int, flow: int, name: str, cat: str,
                   ts: float, args: Optional[Dict[str, Any]] = None) -> None:
        pass

    def flow_end(self, pid: int, tid: int, flow: int, name: str, cat: str,
                 ts: float, args: Optional[Dict[str, Any]] = None) -> None:
        pass

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {
            "kind": "repro.trace",
            "version": 1,
            "clock": "simulated-seconds",
            "detail": "off",
            "capacity": 0,
            "compact": False,
            "dropped_events": 0,
            "folded_events": 0,
            "tracks": [],
            "totals": {},
            "counts": {},
        }

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullTracer (tracing disabled)>"


#: The shared disabled backend.
NULL_TRACER = NullTracer()

#: The process-local current tracer; NULL_TRACER until tracing is enabled.
_active: Union[Tracer, NullTracer] = NULL_TRACER


def get() -> Union[Tracer, NullTracer]:
    """The current process-local tracer (the null backend when off)."""
    return _active


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the current tracer.

    As with the metrics registry, only objects *constructed after* this
    call emit into it: hot-path components capture the tracer once at
    construction time.
    """
    global _active
    _active = tracer if tracer is not None else Tracer()
    return _active


def disable() -> Union[Tracer, NullTracer]:
    """Restore the null backend; returns the tracer that was active."""
    global _active
    previous = _active
    _active = NULL_TRACER
    return previous


def is_enabled() -> bool:
    """True when a live tracer (not the null backend) is installed."""
    return _active.enabled


@contextmanager
def tracing(tracer: Optional[Tracer] = None, *,
            capacity: int = DEFAULT_CAPACITY,
            detail: str = "fine",
            compact: bool = False) -> Iterator[Tracer]:
    """Run a block with a (fresh by default) tracer installed.

    Restores whatever was active before on exit, so a worker process
    can trace one sweep point without leaking state into the next.
    """
    global _active
    previous = _active
    _active = tracer if tracer is not None else Tracer(capacity=capacity,
                                                       detail=detail,
                                                       compact=compact)
    try:
        yield _active
    finally:
        _active = previous
