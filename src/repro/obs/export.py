"""Trace exporters: Chrome trace-event JSON and a static SVG timeline.

The Chrome trace-event format is the lingua franca of timeline viewers
— a document produced here loads directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``.  Simulated seconds
become microseconds (the format's canonical unit); spans become ``"X"``
complete events, instants ``"i"``, and flow edges ``"s"``/``"f"``
pairs, with ``"M"`` metadata events naming every process and thread
lane.  :func:`validate_chrome_trace` is the structural contract the
round-trip test pins.

The SVG exporter mirrors the look of
:mod:`repro.analysis.svg_export` (one lane per track, stable
per-name colours, flow arrows) but renders straight from a trace
document so it has no dependency on the VT postmortem machinery —
``repro.obs`` stays at the bottom of the import stack.
"""

from __future__ import annotations

import hashlib
import html
import json
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "trace_to_svg",
    "save_trace_svg",
]

#: Simulated seconds -> trace-event microseconds.
_US = 1e6


# -- Chrome trace-event JSON ------------------------------------------------------


def to_chrome_trace(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a :meth:`Tracer.snapshot` document to trace-event JSON.

    Flow edges are only exported when both ends survived their ring
    buffers — a dangling ``"s"``/``"f"`` confuses viewers, and the
    drop is already accounted for in ``dropped_events``.
    """
    if doc.get("kind") != "repro.trace":
        raise ValueError("not a repro trace document")
    events: List[Dict[str, Any]] = []
    starts: Dict[int, int] = {}
    ends: Dict[int, int] = {}
    for track in doc["tracks"]:
        pid, tid = track["pid"], track["tid"]
        events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": tid,
            "args": {"name": track["name"]},
        })
        events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": track["name"]},
        })
        for ev in track["events"]:
            ph = ev["ph"]
            out: Dict[str, Any] = {
                "name": ev["name"],
                "cat": ev["cat"],
                "pid": pid,
                "tid": tid,
                "ts": ev["ts"] * _US,
            }
            if ev.get("args"):
                out["args"] = ev["args"]
            if ph == "span":
                out["ph"] = "X"
                out["dur"] = ev.get("dur", 0.0) * _US
            elif ph == "inst":
                out["ph"] = "i"
                out["s"] = "t"
            elif ph == "fs":
                out["ph"] = "s"
                out["id"] = ev["id"]
                starts[ev["id"]] = starts.get(ev["id"], 0) + 1
            elif ph == "ff":
                out["ph"] = "f"
                out["bp"] = "e"
                out["id"] = ev["id"]
                ends[ev["id"]] = ends.get(ev["id"], 0) + 1
            else:  # pragma: no cover - the tracer emits no other phase
                raise ValueError(f"unknown event phase {ph!r}")
            events.append(out)
    # Prune flows with a missing end (ring-evicted counterpart).
    complete_ids = set(starts) & set(ends)
    events = [
        e for e in events
        if e["ph"] not in ("s", "f") or e["id"] in complete_ids
    ]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs.trace",
            "clock": doc.get("clock", "simulated-seconds"),
            "detail": doc.get("detail", "fine"),
            "dropped_events": doc.get("dropped_events", 0),
        },
    }


def write_chrome_trace(doc: Dict[str, Any], path: str) -> None:
    """Write a trace document to ``path`` as Chrome trace-event JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(doc), fh)
        fh.write("\n")


#: Required fields per trace-event phase (the schema the round-trip
#: test validates against; a structural subset of the official format).
_PHASE_REQUIRED: Dict[str, Tuple[str, ...]] = {
    "X": ("name", "cat", "pid", "tid", "ts", "dur"),
    "i": ("name", "cat", "pid", "tid", "ts", "s"),
    "s": ("name", "cat", "pid", "tid", "ts", "id"),
    "f": ("name", "cat", "pid", "tid", "ts", "id", "bp"),
    "M": ("name", "pid", "args"),
}


def validate_chrome_trace(chrome: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``chrome`` is schema-valid trace JSON.

    Checks the JSON-object-format container, per-phase required fields,
    field types, non-negative timestamps/durations, and that every flow
    start has at least one matching finish (and vice versa).
    """
    if not isinstance(chrome, dict) or "traceEvents" not in chrome:
        raise ValueError("trace JSON must be an object with 'traceEvents'")
    if not isinstance(chrome["traceEvents"], list):
        raise ValueError("'traceEvents' must be an array")
    flow_starts: Dict[Any, int] = {}
    flow_ends: Dict[Any, int] = {}
    for i, ev in enumerate(chrome["traceEvents"]):
        if not isinstance(ev, dict):
            raise ValueError(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph not in _PHASE_REQUIRED:
            raise ValueError(f"event #{i}: unknown phase {ph!r}")
        for field in _PHASE_REQUIRED[ph]:
            if field not in ev:
                raise ValueError(f"event #{i} ({ph}): missing field {field!r}")
        if ph != "M":
            if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
                raise ValueError(f"event #{i}: bad ts {ev.get('ts')!r}")
            if not isinstance(ev["pid"], int) or not isinstance(ev["tid"], int):
                raise ValueError(f"event #{i}: pid/tid must be integers")
        if ph == "X" and (not isinstance(ev["dur"], (int, float)) or ev["dur"] < 0):
            raise ValueError(f"event #{i}: bad dur {ev.get('dur')!r}")
        if ph == "s":
            flow_starts[ev["id"]] = flow_starts.get(ev["id"], 0) + 1
        elif ph == "f":
            flow_ends[ev["id"]] = flow_ends.get(ev["id"], 0) + 1
    unstarted = set(flow_ends) - set(flow_starts)
    unfinished = set(flow_starts) - set(flow_ends)
    if unstarted or unfinished:
        raise ValueError(
            f"dangling flow edges: {len(unstarted)} without a start, "
            f"{len(unfinished)} without a finish"
        )


# -- static SVG timeline ----------------------------------------------------------

_LANE_H = 22
_LANE_GAP = 8
_LABEL_W = 110
_AXIS_H = 28


def _color_of(name: str) -> str:
    """Stable, readable colour per event name (same scheme as the VGV
    SVG view, duplicated to keep obs free of analysis imports)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    hue = digest[0] * 360 // 256
    sat = 45 + digest[1] % 30
    light = 42 + digest[2] % 18
    return f"hsl({hue},{sat}%,{light}%)"


def trace_to_svg(doc: Dict[str, Any], width: int = 1200,
                 title: Optional[str] = None,
                 max_flow_lines: int = 2000) -> str:
    """Render a trace document as a standalone SVG timeline.

    One lane per track: coloured span rectangles with hover tool-tips,
    instant ticks, and flow-edge lines from cause to effect.
    """
    if doc.get("kind") != "repro.trace":
        raise ValueError("not a repro trace document")
    tracks = doc["tracks"]
    t0, t1 = float("inf"), float("-inf")
    for track in tracks:
        for ev in track["events"]:
            t0 = min(t0, ev["ts"])
            t1 = max(t1, ev["ts"] + ev.get("dur", 0.0))
    if not tracks or t1 <= t0:
        t0, t1 = 0.0, 1.0
    span = max(t1 - t0, 1e-12)

    lane_y: Dict[Tuple[int, int], int] = {}
    for i, track in enumerate(tracks):
        lane_y[(track["pid"], track["tid"])] = _AXIS_H + i * (_LANE_H + _LANE_GAP)
    height = _AXIS_H + max(1, len(tracks)) * (_LANE_H + _LANE_GAP) + 10
    plot_w = width - _LABEL_W - 10

    def x_of(t: float) -> float:
        return _LABEL_W + (t - t0) / span * plot_w

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="#fcfcfc"/>',
    ]
    if title:
        parts.append(
            f'<text x="{_LABEL_W}" y="14" font-weight="bold">'
            f"{html.escape(title)}</text>"
        )
    parts.append(
        f'<text x="{width - 10}" y="14" text-anchor="end" fill="#555">'
        f"{t0:.4f}s .. {t1:.4f}s (simulated)</text>"
    )

    flow_pts: Dict[int, List[Tuple[str, float, float]]] = {}
    for track in tracks:
        y = lane_y[(track["pid"], track["tid"])]
        label = html.escape(str(track["name"]))
        dropped = track.get("dropped", 0)
        if dropped:
            label += f" (-{dropped})"
        parts.append(
            f'<text x="4" y="{y + _LANE_H - 6}" fill="#333">{label}</text>'
        )
        parts.append(
            f'<rect x="{_LABEL_W}" y="{y}" width="{plot_w}" '
            f'height="{_LANE_H}" fill="#eee"/>'
        )
        for ev in track["events"]:
            ph = ev["ph"]
            x = x_of(ev["ts"])
            if ph == "span":
                w = max((ev.get("dur", 0.0)) / span * plot_w, 0.75)
                tip = (
                    f"{ev['name']} [{ev['cat']}] "
                    f"{ev['ts']:.6f}s +{ev.get('dur', 0.0):.6f}s"
                )
                parts.append(
                    f'<rect x="{x:.2f}" y="{y + 2}" width="{w:.2f}" '
                    f'height="{_LANE_H - 4}" fill="{_color_of(ev["name"])}">'
                    f"<title>{html.escape(tip)}</title></rect>"
                )
            elif ph == "inst":
                parts.append(
                    f'<line x1="{x:.2f}" y1="{y}" x2="{x:.2f}" '
                    f'y2="{y + _LANE_H}" stroke="#d22" stroke-width="1">'
                    f"<title>{html.escape(ev['name'])}</title></line>"
                )
            elif ph in ("fs", "ff"):
                flow_pts.setdefault(ev["id"], []).append(
                    (ph, x, y + _LANE_H / 2)
                )
    drawn = 0
    for pts in flow_pts.values():
        src = [(x, y) for ph, x, y in pts if ph == "fs"]
        for ph, x, y in pts:
            if ph != "ff" or not src:
                continue
            if drawn >= max_flow_lines:
                break
            x0, y0 = src[0]
            parts.append(
                f'<line x1="{x0:.2f}" y1="{y0:.2f}" x2="{x:.2f}" '
                f'y2="{y:.2f}" stroke="#06b" stroke-width="0.8" '
                f'opacity="0.6"/>'
            )
            drawn += 1
    parts.append("</svg>")
    return "\n".join(parts)


def save_trace_svg(doc: Dict[str, Any], path: str,
                   title: Optional[str] = None) -> None:
    """Write the SVG timeline of a trace document to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_to_svg(doc, title=title))
        fh.write("\n")
