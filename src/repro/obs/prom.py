"""Prometheus text exposition, dependency-free.

Renders a :class:`~repro.obs.registry.MetricsRegistry` snapshot (and
ad-hoc metric families) in the text exposition format version 0.0.4 —
the `# TYPE` / `# HELP` comment lines plus one sample per line — so
any Prometheus-compatible scraper can consume the simulator's metrics
without this repo growing a client-library dependency.

Mapping from the registry's four instrument kinds:

* **counter** ``a.b.c`` → counter ``repro_a_b_c_total``
* **gauge** → gauge ``repro_a_b_c``
* **histogram** → classic histogram: cumulative ``_bucket{le="..."}``
  series ending in ``le="+Inf"``, plus ``_sum`` / ``_count``
* **span** ``(count, total, max)`` → summary-shaped ``_count`` /
  ``_sum`` plus a companion ``_max`` gauge

Metric names are sanitised to ``[a-zA-Z_][a-zA-Z0-9_]*`` (dots and
other separators become underscores) and prefixed — default
``repro_`` — to keep the namespace collision-free on a shared
scrape target.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "CONTENT_TYPE",
    "sanitize_name",
    "format_value",
    "render_family",
    "render_snapshot",
]

#: The Content-Type header value for HTTP exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name: str, prefix: str = "repro_") -> str:
    """A valid Prometheus metric name for a dotted registry name."""
    out = prefix + _INVALID_CHARS.sub("_", name)
    if out[0].isdigit():
        out = "_" + out
    return out


def _sanitize_label(name: str) -> str:
    out = _INVALID_LABEL_CHARS.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\"", "\\\"").replace("\n", "\\n")


def format_value(value: float) -> str:
    """A float in exposition form (integers render without a dot)."""
    f = float(value)
    if f == float("inf"):
        return "+Inf"
    if f == float("-inf"):
        return "-Inf"
    if f != f:  # NaN
        return "NaN"
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _sample_line(
    name: str,
    labels: Optional[Mapping[str, str]],
    value: float,
) -> str:
    if labels:
        body = ",".join(
            f'{_sanitize_label(k)}="{_escape_label_value(str(v))}"'
            for k, v in labels.items()
        )
        return f"{name}{{{body}}} {format_value(value)}"
    return f"{name} {format_value(value)}"


def render_family(
    name: str,
    kind: str,
    help_text: str,
    samples: Iterable[Tuple[str, Optional[Mapping[str, str]], float]],
) -> List[str]:
    """One metric family: HELP + TYPE comments, then its sample lines.

    ``samples`` yields ``(suffix, labels, value)`` triples; the suffix
    (possibly empty) is appended to the family name, so a histogram
    family can emit ``_bucket``/``_count`` children under one TYPE.
    """
    lines = [f"# HELP {name} {help_text}", f"# TYPE {name} {kind}"]
    for suffix, labels, value in samples:
        lines.append(_sample_line(name + suffix, labels, value))
    return lines


def render_snapshot(
    snapshot: Dict[str, Any],
    prefix: str = "repro_",
    extra_help: Optional[Mapping[str, str]] = None,
) -> str:
    """The full exposition document for one registry snapshot.

    ``snapshot`` is the dict ``MetricsRegistry.snapshot()`` returns
    (``counters`` / ``gauges`` / ``histograms`` / ``spans``).
    ``extra_help`` optionally maps *dotted* registry names to HELP
    strings; names without an entry get a generic line.
    """
    helps = extra_help or {}
    out: List[str] = []

    for name, value in snapshot.get("counters", {}).items():
        fam = sanitize_name(name, prefix) + "_total"
        out.extend(render_family(
            fam, "counter",
            helps.get(name, f"repro counter {name}"),
            [("", None, float(value))],
        ))

    for name, value in snapshot.get("gauges", {}).items():
        fam = sanitize_name(name, prefix)
        out.extend(render_family(
            fam, "gauge",
            helps.get(name, f"repro gauge {name}"),
            [("", None, float(value))],
        ))

    for name, hist in snapshot.get("histograms", {}).items():
        fam = sanitize_name(name, prefix)
        edges = list(hist["edges"])
        counts = list(hist["counts"])
        samples: List[Tuple[str, Optional[Mapping[str, str]], float]] = []
        cumulative = 0.0
        for edge, count in zip(edges, counts[:-1]):
            cumulative += count
            samples.append(("_bucket", {"le": format_value(edge)}, cumulative))
        cumulative += counts[-1] if counts else 0.0
        samples.append(("_bucket", {"le": "+Inf"}, cumulative))
        samples.append(("_sum", None, float(hist.get("total", 0.0))))
        samples.append(("_count", None, cumulative))
        out.extend(render_family(
            fam, "histogram",
            helps.get(name, f"repro histogram {name}"),
            samples,
        ))

    for name, agg in snapshot.get("spans", {}).items():
        fam = sanitize_name(name, prefix)
        # snapshot() emits {"count", "total", "max"}; live registries
        # hold [count, total, max] lists — accept both.
        if isinstance(agg, Mapping):
            count, total, mx = (float(agg["count"]), float(agg["total"]),
                                float(agg["max"]))
        else:
            count, total, mx = float(agg[0]), float(agg[1]), float(agg[2])
        out.extend(render_family(
            fam, "summary",
            helps.get(name, f"repro span {name}"),
            [("_count", None, count), ("_sum", None, total)],
        ))
        out.extend(render_family(
            fam + "_max", "gauge",
            helps.get(name, f"max single duration of span {name}"),
            [("", None, mx)],
        ))

    return "\n".join(out) + "\n" if out else ""
