"""Sweep3d — the ASCI neutron-transport kernel (MPI/F77).

A KBA wavefront sweep: ranks form a 2D process grid; for each of the 8
octants a diagonal wavefront of work pipelines across the grid, with
each rank receiving inflow faces from its upstream neighbours, sweeping
its local block (real numpy flux attenuation), and sending outflow
faces downstream.

Matching the paper: **21** functions, *strong* scaling (the input fixes
the global problem, so per-rank work shrinks as 1/P), and a call
intensity so low that all instrumentation policies perform identically
(Figure 7(c)) — which is why the paper skipped a Subset version and the
Dynamic run instruments all 21 functions.
"""

from __future__ import annotations

from typing import Generator, List, Optional

import numpy as np

from ..program import ExecutableImage, ProgramContext
from .base import AppSpec, NoiseProfile, grid_dims

__all__ = ["SWEEP3D", "build_exe", "make_program"]

ALL_FUNCS = (
    "driver",
    "inner",
    "sweep",
    "source",
    "flux_err",
    "octant",
    "pipe_recv",
    "pipe_send",
    "snd_real",
    "rcv_real",
    "initialize",
    "read_input",
    "decomp",
    "task_init",
    "task_end",
    "initgeom",
    "initsrc",
    "octant_loop",
    "angle_loop",
    "global_int_sum",
    "timers",
)
assert len(ALL_FUNCS) == 21

#: Outer (source) iterations at scale 1.0.
ITERATIONS = 12
#: Total sweep work across all ranks per full-scale run (rank-seconds).
TOTAL_WORK = 560.0
#: Utility calls per octant across the whole job (low call intensity;
#: strong scaling divides them among the ranks like the zones they
#: iterate over).
NOISE_CALLS_TOTAL_PER_OCTANT = 16_000
#: k-plane/angle sub-blocks pipelined through the wavefront per octant
#: (KBA blocking: amortises the pipeline fill over the octant).
NBLOCKS = 8
#: The 8 octant sweep directions (dx, dy across the process grid).
OCTANTS = ((1, 1), (1, -1), (-1, 1), (-1, -1), (1, 1), (1, -1), (-1, 1), (-1, -1))

_noise = NoiseProfile(
    ["angle_loop", "snd_real", "rcv_real", "timers"],
    hot_count=2,
    hot_share=0.9,
    mean_cost=1.0e-6,
)


def build_exe(instrument_static: bool) -> ExecutableImage:
    exe = ExecutableImage("sweep3d")
    exe.define("inner", body=_inner, module="sweep3d")
    exe.define("octant", body=_octant, module="sweep3d")
    exe.define("sweep", body=_sweep, module="sweep3d")
    exe.define("source", body=_source, module="sweep3d")
    exe.define("flux_err", body=_flux_err, module="sweep3d")
    exe.define("pipe_recv", body=_pipe_recv, module="sweep3d")
    exe.define("pipe_send", body=_pipe_send, module="sweep3d")
    for name in ALL_FUNCS:
        if name not in exe:
            exe.define(name, module="sweep3d")
    if instrument_static:
        exe.instrument_statically()
    return exe


class _SweepState:
    def __init__(self, rank: int, n_procs: int, scale: float) -> None:
        self.rank = rank
        self.n_procs = n_procs
        self.scale = scale
        self.px, self.py = grid_dims(n_procs)
        self.ix, self.iy = rank % self.px, rank // self.px
        self.iterations = max(1, round(ITERATIONS * scale))
        #: Per-rank sweep cost per octant (strong scaling: W / P / 8).
        self.block_cost = TOTAL_WORK / n_procs / (self.iterations * 8) * scale
        # Real flux block: attenuated every sweep.
        self.flux = np.full((16, 16), 1.0)
        self.sigma = 0.08
        self.current_octant = (1, 1)
        #: Per-rank utility calls per octant (shrinks with P).
        self.noise_per_octant = max(200, NOISE_CALLS_TOTAL_PER_OCTANT // n_procs)
        self.err_history: List[float] = []
        self.local_err = 0.0


def _upstream(state: _SweepState, d: int, axis: str) -> Optional[int]:
    """Rank this one receives from for sweep direction ``d`` on ``axis``."""
    if axis == "x":
        src_ix = state.ix - d
        if 0 <= src_ix < state.px:
            return state.iy * state.px + src_ix
        return None
    src_iy = state.iy - d
    if 0 <= src_iy < state.py:
        return src_iy * state.px + state.ix
    return None


def _downstream(state: _SweepState, d: int, axis: str) -> Optional[int]:
    if axis == "x":
        dst_ix = state.ix + d
        if 0 <= dst_ix < state.px:
            return state.iy * state.px + dst_ix
        return None
    dst_iy = state.iy + d
    if 0 <= dst_iy < state.py:
        return dst_iy * state.px + state.ix
    return None


def _pipe_recv(pctx: ProgramContext, octant_index: int, block: int) -> Generator:
    """Wait for the inflow faces of one sub-block from upstream."""
    state: _SweepState = pctx.props["sweep"]
    dx, dy = state.current_octant
    comm = pctx.mpi.comm
    tag = 500 + octant_index * NBLOCKS + block
    for axis, d in (("x", dx), ("y", dy)):
        src = _upstream(state, d, axis)
        if src is not None:
            yield from pctx.call("rcv_real")
            yield from comm.recv(source=src, tag=tag)


def _pipe_send(pctx: ProgramContext, octant_index: int, block: int) -> Generator:
    """Send one sub-block's outflow faces downstream."""
    state: _SweepState = pctx.props["sweep"]
    dx, dy = state.current_octant
    comm = pctx.mpi.comm
    tag = 500 + octant_index * NBLOCKS + block
    face = state.flux[0, :].copy()
    for axis, d in (("x", dx), ("y", dy)):
        dst = _downstream(state, d, axis)
        if dst is not None:
            yield from pctx.call("snd_real")
            yield from comm.send(face, dst, tag=tag)


def _sweep(pctx: ProgramContext, block: int) -> Generator:
    """Sweep one local sub-block: real attenuation + modelled cost."""
    state: _SweepState = pctx.props["sweep"]
    if block == 0:
        state.flux *= np.exp(-state.sigma)
    pctx.charge(state.block_cost / NBLOCKS)
    for fn, n, cost in _noise.hot_batches(state.noise_per_octant // NBLOCKS):
        yield from pctx.call_batch(fn, n, cost)


def _source(pctx: ProgramContext) -> None:
    state: _SweepState = pctx.props["sweep"]
    state.flux += 0.02
    pctx.charge(state.block_cost * 0.1)


def _octant(pctx: ProgramContext, octant_index: int) -> Generator:
    """One octant wavefront: NBLOCKS sub-blocks pipeline across ranks."""
    state: _SweepState = pctx.props["sweep"]
    state.current_octant = OCTANTS[octant_index]
    for block in range(NBLOCKS):
        yield from pctx.call("pipe_recv", octant_index, block)
        yield from pctx.call("sweep", block)
        yield from pctx.call("pipe_send", octant_index, block)


def _flux_err(pctx: ProgramContext) -> Generator:
    """Global convergence check: allreduce of the local flux change."""
    state: _SweepState = pctx.props["sweep"]
    state.local_err = float(np.abs(state.flux).mean())
    pctx.charge(1e-4)
    total = yield from pctx.mpi.comm.allreduce(state.local_err, op=max)
    state.err_history.append(total)
    return total


def _inner(pctx: ProgramContext) -> Generator:
    """One source iteration: all 8 octant wavefronts + convergence."""
    state: _SweepState = pctx.props["sweep"]
    yield from pctx.call("source")
    for octant_index in range(8):
        yield from pctx.call("octant", octant_index)
    err = yield from pctx.call("flux_err")
    for fn, n, cost in _noise.cold_batches(state.noise_per_octant):
        yield from pctx.call_batch(fn, n, cost)
    return err


def make_program(n_procs: int, scale: float = 1.0):
    def program(pctx: ProgramContext) -> Generator:
        yield from pctx.call("MPI_Init")
        state = _SweepState(pctx.mpi.rank, n_procs, scale)
        pctx.props["sweep"] = state
        yield from pctx.call("initialize")
        yield from pctx.call("decomp")
        comm = pctx.mpi.comm
        yield from comm.barrier()
        t0 = pctx.now
        for _it in range(state.iterations):
            yield from pctx.call("inner")
        yield from comm.barrier()
        elapsed = pctx.now - t0
        yield from pctx.call("MPI_Finalize")
        return elapsed

    return program


SWEEP3D = AppSpec(
    name="sweep3d",
    title="Sweep3d",
    lang="MPI/F77",
    kind="mpi",
    description="A neutron transport problem",
    functions=ALL_FUNCS,
    subset=ALL_FUNCS,          # Dynamic instruments all 21 functions
    dynamic_targets=ALL_FUNCS,
    scaling="strong",
    # The MPI version does not run on a single processor (Section 4.2).
    cpu_counts=(2, 4, 8, 16, 32, 64),
    build_exe=build_exe,
    make_program=make_program,
    has_subset_policy=False,
)
SWEEP3D.validate()
