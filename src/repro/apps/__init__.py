"""repro.apps — analogs of the four ASCI kernel benchmarks (Table 2).

=========  ========  ==========================================
Smg98      MPI/C     A multigrid solver (199 fns, 62 subset)
Sppm       MPI/F77   A 3D gas dynamics problem (22 fns, 7 subset)
Sweep3d    MPI/F77   A neutron transport problem (21 fns)
Umt98      OMP/F77   The Boltzmann transport equation (44 fns, 6 subset)
=========  ========  ==========================================
"""

from typing import Dict

from .base import AppSpec, MPI_SCALING_CPUS, NoiseProfile, OMP_SCALING_CPUS, grid_dims, neighbors_2d
from .inputdeck import ITERATION_KEYS, InputDeck, deck_scale
from .smg98 import SMG98
from .sppm import SPPM
from .sweep3d import SWEEP3D
from .umt98 import UMT98

__all__ = [
    "AppSpec",
    "NoiseProfile",
    "grid_dims",
    "neighbors_2d",
    "MPI_SCALING_CPUS",
    "OMP_SCALING_CPUS",
    "InputDeck",
    "deck_scale",
    "ITERATION_KEYS",
    "SMG98",
    "SPPM",
    "SWEEP3D",
    "UMT98",
    "ALL_APPS",
    "get_app",
]

ALL_APPS: Dict[str, AppSpec] = {
    app.name: app for app in (SMG98, SPPM, SWEEP3D, UMT98)
}


def get_app(name: str) -> AppSpec:
    """Look up an application analog by name (case-insensitive)."""
    try:
        return ALL_APPS[name.lower()]
    except KeyError:
        raise KeyError(f"unknown app {name!r}; known: {sorted(ALL_APPS)}") from None
