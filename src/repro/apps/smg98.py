"""Smg98 — the ASCI semicoarsening multigrid kernel (MPI/C).

The analog of hypre's SMG solver: per-rank local grid, V-cycles of
relax / residual / restrict / interpolate with halo exchanges, a global
residual reduction per cycle, and — matching the paper — a function
inventory of **199** functions of which **62** implement the solver.

Workload structure (what makes Figure 7(a) come out):

* weak scaling — the input sets the per-process size, so per-rank call
  counts and compute stay constant while coarse-level/synchronisation
  overhead grows with the process count;
* the 137 non-solver utility functions (box loops, index arithmetic)
  take ~6M calls per rank per full-scale run — tiny bodies, enormous
  rates;
* the 62 solver functions are called ~60 times per cycle — big bodies,
  low rates.

The numerics are real: each rank smooths an actual Poisson problem on a
numpy grid and the global residual norm (checked by the tests) decreases
monotonically cycle over cycle.
"""

from __future__ import annotations

import math
from typing import Generator, List

import numpy as np

from ..program import ExecutableImage, ProgramContext
from .base import AppSpec, MPI_SCALING_CPUS, NoiseProfile, grid_dims, neighbors_2d

__all__ = ["SMG98", "build_exe", "make_program"]

# ---------------------------------------------------------------------------
# Function inventory: 199 functions, 62-solver subset (Section 4.3).
# ---------------------------------------------------------------------------

_SOLVER_CORE = [
    "hypre_SMGSolve",
    "hypre_SMGSetup",
    "hypre_SMGRelax",
    "hypre_SMGResidual",
    "hypre_SMGRestrict",
    "hypre_SMGIntAdd",
    "hypre_CyclicReduction",
    "hypre_SMGRelaxSetup",
    "hypre_SMGResidualSetup",
    "hypre_SMGRestrictSetup",
    "hypre_SMGIntAddSetup",
    "hypre_CyclicReductionSetup",
    "hypre_SMG3BuildRAPSym",
    "hypre_SMG3BuildRAPNoSym",
    "hypre_SMG3RAPPeriodicSym",
    "hypre_StructMatvec",
    "hypre_StructAxpy",
    "hypre_StructCopy",
    "hypre_StructInnerProd",
    "hypre_StructScale",
    "hypre_SemiInterp",
    "hypre_SemiRestrict",
]
_SOLVER_GEN = [f"hypre_SMGSolveLevel{i:02d}" for i in range(20)] + [
    f"hypre_SMG3BuildRAPStage{i:02d}" for i in range(20)
]
SOLVER_FUNCS = tuple(_SOLVER_CORE + _SOLVER_GEN)  # 62
assert len(SOLVER_FUNCS) == 62

_UTIL_HOT = [
    "hypre_BoxLoop0",
    "hypre_BoxLoop1",
    "hypre_BoxLoop2",
    "hypre_BoxLoop3",
    "hypre_BoxLoop4",
    "hypre_BoxGetSize",
    "hypre_BoxGetStrideVolume",
    "hypre_IndexCopy",
    "hypre_BoxVolume",
    "hypre_BoxIndexRank",
]
_UTIL_GEN = (
    [f"hypre_BoxUtil{i:02d}" for i in range(50)]
    + [f"hypre_StructUtil{i:02d}" for i in range(40)]
    + [f"hypre_CommPkg{i:02d}" for i in range(20)]
    + [f"hypre_DataExchange{i:02d}" for i in range(17)]
)
UTIL_FUNCS = tuple(_UTIL_HOT + _UTIL_GEN)  # 137
assert len(UTIL_FUNCS) == 137

ALL_FUNCS = SOLVER_FUNCS + UTIL_FUNCS  # 199
assert len(ALL_FUNCS) == 199

#: Calls into utility functions per V-cycle per rank at scale 1.0.
NOISE_CALLS_PER_CYCLE = 600_000
#: V-cycles at scale 1.0.
CYCLES = 10
#: Local grid edge (per rank).
LOCAL_N = 48
#: Multigrid levels resolvable within the local grid.
LOCAL_LEVELS = 5
#: Per-cycle compute budget (s) for the solver functions at level 0.
FINE_RELAX_COST = 0.12
#: Extra coarse-level cost per cycle per log2(P) level (poorly scaling
#: coarse solves; this is what makes Smg98's time grow with CPUs).
COARSE_LEVEL_COST = 0.17

_noise = NoiseProfile(UTIL_FUNCS, hot_count=10, hot_share=0.8, mean_cost=1.15e-6)


def build_exe(instrument_static: bool) -> ExecutableImage:
    """Compile Smg98: define all 199 symbols, optionally VT-instrumented."""
    exe = ExecutableImage("smg98")
    exe.define("hypre_SMGSolve", body=_smg_solve, module="smg")
    exe.define("hypre_SMGSetup", body=_smg_setup, module="smg")
    exe.define("hypre_SMGRelax", body=_smg_relax, module="smg")
    exe.define("hypre_SMGResidual", body=_smg_residual, module="smg")
    exe.define("hypre_SMGRestrict", body=_smg_restrict, module="smg")
    exe.define("hypre_SMGIntAdd", body=_smg_intadd, module="smg")
    exe.define("hypre_CyclicReduction", body=_smg_cyclic_reduction, module="smg")
    exe.define("hypre_StructInnerProd", body=_smg_inner_prod, module="struct_mv")
    for name in ALL_FUNCS:
        if name not in exe:
            exe.define(name, module="smg" if name in SOLVER_FUNCS else "struct_mv")
    if instrument_static:
        exe.instrument_statically()
    return exe


class _SmgState:
    """Per-rank solver state."""

    def __init__(self, rank: int, n_procs: int, scale: float) -> None:
        self.rank = rank
        self.n_procs = n_procs
        self.scale = scale
        self.px, self.py = grid_dims(n_procs)
        self.neighbors = neighbors_2d(rank, self.px, self.py)
        self.cycles = max(1, round(CYCLES * scale))
        #: log2(P) extra coarse levels from the growing global problem.
        self.extra_levels = max(0, int(math.ceil(math.log2(n_procs)))) if n_procs > 1 else 0
        self.levels = LOCAL_LEVELS + self.extra_levels
        # A real local Poisson problem: -lap(u) = f, u0 = 0.
        rng = np.random.default_rng(1234 + rank)
        self.f = rng.standard_normal((LOCAL_N, LOCAL_N))
        self.u = np.zeros((LOCAL_N, LOCAL_N))
        self.residual_history: List[float] = []
        self.local_res = 0.0


def _jacobi_sweeps(state: _SmgState, sweeps: int) -> None:
    """Real numerics: damped-Jacobi smoothing of the local problem."""
    u, f = state.u, state.f
    for _ in range(sweeps):
        avg = 0.25 * (
            np.roll(u, 1, 0) + np.roll(u, -1, 0) + np.roll(u, 1, 1) + np.roll(u, -1, 1)
        )
        u = u + 0.8 * (avg + 0.25 * f - u)
    state.u = u


def _local_residual(state: _SmgState) -> float:
    u, f = state.u, state.f
    lap = (
        np.roll(u, 1, 0) + np.roll(u, -1, 0) + np.roll(u, 1, 1) + np.roll(u, -1, 1)
        - 4.0 * u
    )
    return float(np.sum((lap + f) ** 2))


# -- solver function bodies (closures over pctx.props["smg"]) ----------------


def _smg_setup(pctx: ProgramContext) -> Generator:
    state: _SmgState = pctx.props["smg"]
    # RAP construction etc.: one-time cost + a burst of utility calls.
    for fn, n, cost in _noise.cold_batches(NOISE_CALLS_PER_CYCLE // 2):
        yield from pctx.call_batch(fn, n, cost)
    yield from pctx.call("hypre_SMG3BuildRAPSym")
    yield from pctx.call("hypre_SMGRelaxSetup")
    pctx.charge(0.25 * state.scale)


def _smg_relax(pctx: ProgramContext, level: int) -> Generator:
    state: _SmgState = pctx.props["smg"]
    if level == 0:
        _jacobi_sweeps(state, 2)
    pctx.charge(FINE_RELAX_COST * 2.0 ** (-level))
    yield from _halo_exchange(pctx, state, level)


def _smg_residual(pctx: ProgramContext, level: int) -> Generator:
    state: _SmgState = pctx.props["smg"]
    if level == 0:
        state.local_res = _local_residual(state)
    pctx.charge(0.6 * FINE_RELAX_COST * 2.0 ** (-level))
    return None
    yield  # pragma: no cover


def _smg_restrict(pctx: ProgramContext, level: int) -> Generator:
    pctx.charge(0.3 * FINE_RELAX_COST * 2.0 ** (-level))
    return None
    yield  # pragma: no cover


def _smg_intadd(pctx: ProgramContext, level: int) -> Generator:
    pctx.charge(0.3 * FINE_RELAX_COST * 2.0 ** (-level))
    return None
    yield  # pragma: no cover


def _smg_cyclic_reduction(pctx: ProgramContext, level: int) -> Generator:
    """Coarse-grid solve: poorly parallelised, latency-bound — charged
    at a rate that does not shrink with P.  One such level exists per
    log2(P), so Smg98's per-cycle time grows with the CPU count (the
    weak-scaling growth of Figure 7(a))."""
    state: _SmgState = pctx.props["smg"]
    pctx.charge(COARSE_LEVEL_COST)
    comm = pctx.mpi.comm
    _total = yield from comm.allreduce(state.local_res)


def _smg_inner_prod(pctx: ProgramContext) -> Generator:
    state: _SmgState = pctx.props["smg"]
    comm = pctx.mpi.comm
    total = yield from comm.allreduce(state.local_res)
    return math.sqrt(max(total, 0.0))


def _halo_exchange(pctx: ProgramContext, state: _SmgState, level: int) -> Generator:
    """Boundary exchange with the four grid neighbours (fine levels)."""
    if level > 2 or state.n_procs == 1:
        return
    comm = pctx.mpi.comm
    payload = state.u[0, :].copy()  # one boundary face
    for direction, opposite in (("east", "west"), ("north", "south")):
        dest = state.neighbors[direction]
        src = state.neighbors[opposite]
        tag = 100 + level * 4 + (0 if direction == "east" else 1)
        if dest is not None:
            req = comm.isend(payload, dest, tag=tag)
        if src is not None:
            yield from comm.recv(source=src, tag=tag)
        if dest is not None:
            yield from req.wait()


def _smg_solve(pctx: ProgramContext) -> Generator:
    """One V-cycle: down-sweep, coarse solve, up-sweep."""
    state: _SmgState = pctx.props["smg"]
    # Per-level noise budget halves as grids coarsen.
    weights = [2.0 ** (-l) for l in range(LOCAL_LEVELS)]
    wsum = sum(weights)
    # Down-sweep over the locally resolvable levels.
    for level in range(LOCAL_LEVELS):
        yield from pctx.call("hypre_SMGRelax", level)
        yield from pctx.call("hypre_SMGResidual", level)
        if level < LOCAL_LEVELS - 1:
            yield from pctx.call("hypre_SMGRestrict", level)
        budget = int(NOISE_CALLS_PER_CYCLE * weights[level] / wsum)
        for fn, n, cost in _noise.hot_batches(budget):
            yield from pctx.call_batch(fn, n, cost)
    # Coarse levels beyond the local grid (one per log2 P).
    for extra in range(state.extra_levels):
        yield from pctx.call("hypre_CyclicReduction", LOCAL_LEVELS + extra)
    # Up-sweep.
    for level in range(LOCAL_LEVELS - 2, -1, -1):
        yield from pctx.call("hypre_SMGIntAdd", level)
        yield from pctx.call("hypre_SMGRelax", level)
    # The long tail of utility calls, batched per cycle.
    for fn, n, cost in _noise.cold_batches(NOISE_CALLS_PER_CYCLE):
        yield from pctx.call_batch(fn, n, cost)
    # Global residual norm: the convergence check.
    norm = yield from pctx.call("hypre_StructInnerProd")
    state.residual_history.append(norm)
    return norm


def make_program(n_procs: int, scale: float = 1.0):
    """The per-rank Smg98 main program."""

    def program(pctx: ProgramContext) -> Generator:
        yield from pctx.call("MPI_Init")
        state = _SmgState(pctx.mpi.rank, n_procs, scale)
        pctx.props["smg"] = state
        yield from pctx.call("hypre_SMGSetup")
        comm = pctx.mpi.comm
        yield from comm.barrier()
        t0 = pctx.now
        for _cycle in range(state.cycles):
            yield from pctx.call("hypre_SMGSolve")
        yield from comm.barrier()
        elapsed = pctx.now - t0
        pctx.props["residuals"] = state.residual_history
        yield from pctx.call("MPI_Finalize")
        return elapsed

    return program


SMG98 = AppSpec(
    name="smg98",
    title="Smg98",
    lang="MPI/C",
    kind="mpi",
    description="A multigrid solver",
    functions=ALL_FUNCS,
    subset=SOLVER_FUNCS,
    dynamic_targets=SOLVER_FUNCS,
    scaling="weak",
    cpu_counts=MPI_SCALING_CPUS,
    build_exe=build_exe,
    make_program=make_program,
)
SMG98.validate()
