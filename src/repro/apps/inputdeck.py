"""Application input decks.

The real ASCI kernels read their problem configuration from input files
(sweep3d's ``input`` deck, sPPM's ``inputdeck``, hypre/SMG command-line
options, UMT's grid file).  This module gives the analogs the same
front door: a ``key = value`` deck whose app-native iteration parameter
maps onto the workload-scale knob the programs take.

.. code-block:: text

    # sweep3d input deck
    itm   = 6        # outer source iterations
    ncpus = 8        # optional, overrides --cpus

Per-app native keys (matching the original codes' vocabulary):

=========  =========== =============================================
app        key          meaning
=========  =========== =============================================
smg98      maxiter      multigrid V-cycles       (paper-scale: 10)
sppm       nstop        hydro timesteps          (paper-scale: 20)
sweep3d    itm          source iterations        (paper-scale: 12)
umt98      niter        transport iterations     (paper-scale: 10)
=========  =========== =============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from .base import AppSpec

__all__ = ["InputDeck", "ITERATION_KEYS", "deck_scale"]

#: app name -> (native iteration key, paper-scale iteration count).
ITERATION_KEYS: Dict[str, tuple] = {
    "smg98": ("maxiter", 10),
    "sppm": ("nstop", 20),
    "sweep3d": ("itm", 12),
    "umt98": ("niter", 10),
}

Value = Union[int, float, str]


@dataclass
class InputDeck:
    """A parsed ``key = value`` input deck."""

    params: Dict[str, Value] = field(default_factory=dict)

    @classmethod
    def parse(cls, text: str) -> "InputDeck":
        deck = cls()
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].split("!", 1)[0].strip()
            if not line:
                continue
            if "=" not in line:
                raise ValueError(f"input deck line {line_no}: expected key = value")
            key, _, value = line.partition("=")
            key = key.strip().lower()
            value = value.strip()
            if not key or not value:
                raise ValueError(f"input deck line {line_no}: empty key or value")
            deck.params[key] = _coerce(value)
        return deck

    @classmethod
    def load(cls, path: str) -> "InputDeck":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.parse(fh.read())

    def get(self, key: str, default: Optional[Value] = None) -> Optional[Value]:
        return self.params.get(key.lower(), default)

    def get_int(self, key: str, default: Optional[int] = None) -> Optional[int]:
        value = self.get(key)
        if value is None:
            return default
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        if not isinstance(value, int):
            raise ValueError(f"input deck: {key} = {value!r} is not an integer")
        return value

    def __contains__(self, key: str) -> bool:
        return key.lower() in self.params

    def __len__(self) -> int:
        return len(self.params)


def _coerce(token: str) -> Value:
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def deck_scale(app: AppSpec, deck: InputDeck, default_scale: float = 1.0) -> float:
    """Workload scale implied by the app's native iteration parameter.

    ``maxiter = 5`` in an Smg98 deck means half the paper's 10 V-cycles,
    so scale 0.5.  Falls back to ``default_scale`` when the deck does
    not set the parameter.  An explicit ``scale =`` entry wins.
    """
    explicit = deck.get("scale")
    if explicit is not None:
        if not isinstance(explicit, (int, float)) or explicit <= 0:
            raise ValueError(f"input deck: scale = {explicit!r} must be positive")
        return float(explicit)
    key, paper_value = ITERATION_KEYS[app.name]
    iterations = deck.get_int(key)
    if iterations is None:
        return default_scale
    if iterations < 1:
        raise ValueError(f"input deck: {key} = {iterations} must be >= 1")
    return iterations / paper_value
