"""Umt98 — the ASCI Boltzmann-transport kernel (OpenMP/F77).

An unstructured-mesh photon/neutron transport sweep parallelised with
OpenMP: each iteration forks a parallel region whose threads grab mesh
slabs from a dynamic worksharing schedule, sweep them (real numpy
attenuation), and reduce the flux error.

Matching the paper: **44** functions, most of which perform one-time
initialisation; the **6** sweep functions carry the execution time and
are the Subset/Dynamic targets.  Strong scaling on 1..8 processors of a
single SMP node (Figure 7(d)); a single shared process image, which is
why dynprof's instrumentation time is flat in Figure 9.
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from ..openmp import DynamicSchedule
from ..program import ExecutableImage, ProgramContext
from .base import AppSpec, NoiseProfile, OMP_SCALING_CPUS

__all__ = ["UMT98", "build_exe", "make_program"]

# The 6 transport-sweep functions (Subset / Dynamic targets).
SWEEP_FUNCS = (
    "snswp3d",
    "snflwxyz",
    "snneed",
    "snmoments",
    "snqq",
    "snynmset",
)
# 38 init/utility functions ("most of which perform initialization").
INIT_FUNCS = tuple(
    [
        "rdmesh",
        "genmesh",
        "mkcolor",
        "snrzaset",
        "sngeom",
        "snmref",
        "snbdry",
        "snmat",
        "snsrc",
        "sninit",
    ]
    + [f"umt_setup{i:02d}" for i in range(16)]
    + [
        "umt_zoneidx",
        "umt_facemap",
        "umt_gather_psi",
        "umt_scatter_psi",
        "umt_angle_weights",
        "umt_timers",
        "umt_monitor",
        "umt_normalize",
        "umt_banner",
        "umt_checkpt",
        "umt_energy_balance",
        "umt_exit",
    ]
)
ALL_FUNCS = SWEEP_FUNCS + INIT_FUNCS  # 44
assert len(ALL_FUNCS) == 44

#: Transport iterations at scale 1.0.
ITERATIONS = 10
#: Total sweep work (thread-seconds) at scale 1.0 — strong scaling.
TOTAL_WORK = 350.0
#: Per-iteration utility calls across the whole team.
NOISE_CALLS_PER_ITER = 1_000_000
#: Mesh slabs handed out by the dynamic schedule per iteration.
SLABS = 64

_noise = NoiseProfile(
    ["umt_zoneidx", "umt_facemap", "umt_gather_psi", "umt_scatter_psi",
     "umt_angle_weights", "umt_timers", "umt_monitor", "umt_normalize"],
    hot_count=4,
    hot_share=0.85,
    mean_cost=1.2e-6,
)


def build_exe(instrument_static: bool) -> ExecutableImage:
    exe = ExecutableImage("umt98")
    exe.define("snswp3d", body=_snswp3d, module="umt")
    exe.define("snflwxyz", body=_snflwxyz, module="umt")
    exe.define("snmoments", body=_snmoments, module="umt")
    for name in ALL_FUNCS:
        if name not in exe:
            exe.define(name, module="umt")
    if instrument_static:
        exe.instrument_statically()
    return exe


class _UmtState:
    def __init__(self, n_threads: int, scale: float) -> None:
        self.n_threads = n_threads
        self.scale = scale
        self.iterations = max(1, round(ITERATIONS * scale))
        #: Cost of sweeping one slab (strong scaling: fixed total work).
        self.slab_cost = TOTAL_WORK * scale / (self.iterations * SLABS)
        self.psi = np.full((SLABS, 32), 1.0)
        self.sigma = 0.05
        self.err_history: List[float] = []


def _snswp3d(pctx: ProgramContext, start: int, stop: int) -> Generator:
    """Sweep mesh slabs [start, stop): the heavy kernel."""
    state: _UmtState = pctx.props["umt"]
    state.psi[start:stop] *= np.exp(-state.sigma)
    pctx.charge(state.slab_cost * (stop - start))
    budget = NOISE_CALLS_PER_ITER * (stop - start) // SLABS
    for fn, n, cost in _noise.hot_batches(budget):
        yield from pctx.call_batch(fn, n, cost)


def _snflwxyz(pctx: ProgramContext, start: int, stop: int) -> Generator:
    state: _UmtState = pctx.props["umt"]
    pctx.charge(state.slab_cost * 0.15 * (stop - start))
    return None
    yield  # pragma: no cover


def _snmoments(pctx: ProgramContext) -> None:
    state: _UmtState = pctx.props["umt"]
    state.psi += 0.01
    pctx.charge(state.slab_cost * 0.5)


def make_program(n_threads: int, scale: float = 1.0):
    def program(pctx: ProgramContext) -> Generator:
        # The Guide compiler plants VT_init at the start of main.
        yield from pctx.call("VT_init")
        state = _UmtState(n_threads, scale)
        pctx.props["umt"] = state

        # Initialisation: most of the inventory runs exactly once.
        for name in INIT_FUNCS[:26]:
            yield from pctx.call(name)
            pctx.charge(2e-3)

        t0 = pctx.now
        omp = pctx.omp
        for _it in range(state.iterations):

            def slab_body(tctx: ProgramContext, start: int, stop: int) -> Generator:
                tctx.props["umt"] = state
                yield from tctx.call("snswp3d", start, stop)
                yield from tctx.call("snflwxyz", start, stop)

            yield from omp.parallel_for(
                SLABS, slab_body, schedule=DynamicSchedule(chunk=2),
                name="sn_sweep",
            )
            yield from pctx.call("snmoments")
            err = float(np.abs(state.psi).mean())
            state.err_history.append(err)
            for fn, n, cost in _noise.cold_batches(NOISE_CALLS_PER_ITER):
                yield from pctx.call_batch(fn, n, cost)
        elapsed = pctx.now - t0
        return elapsed

    return program


UMT98 = AppSpec(
    name="umt98",
    title="Umt98",
    lang="OMP/F77",
    kind="omp",
    description="The Boltzmann transport equation",
    functions=ALL_FUNCS,
    subset=SWEEP_FUNCS,
    dynamic_targets=SWEEP_FUNCS,
    scaling="strong",
    cpu_counts=OMP_SCALING_CPUS,
    build_exe=build_exe,
    make_program=make_program,
)
UMT98.validate()
