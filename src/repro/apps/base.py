"""Shared machinery for the ASCI kernel application analogs.

Each application (Table 2) is described by an :class:`AppSpec`: its
function inventory (the paper gives exact counts: Smg98 199, Sppm 22,
Sweep3d 21, Umt98 44), the "important subset" used by the Subset and
Dynamic policies (62 / 7 / all 21 / 6), its scaling mode, and factories
for the executable image and the per-rank program.

The key structural fact the reproduction preserves: the *subset*
functions are few, called rarely, and hold most of the execution time
(solver routines), while the *non-subset* inventory contains the tiny
utility functions called at enormous rates.  That split is why Subset ≈
Full-Off (the residual per-call lookup on the noisy functions dominates)
while Dynamic ≈ None (uninstrumented functions cost literally nothing).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Generator, List, Sequence, Tuple

from ..program import ExecutableImage, ProgramContext

__all__ = [
    "AppSpec",
    "NoiseProfile",
    "grid_dims",
    "neighbors_2d",
    "MPI_SCALING_CPUS",
    "OMP_SCALING_CPUS",
]

#: The processor counts of Figure 7 for the MPI applications.
MPI_SCALING_CPUS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64)
#: And for the OpenMP application (single 8-way SMP node).
OMP_SCALING_CPUS: Tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class AppSpec:
    """Static description + factories for one ASCI kernel analog."""

    name: str
    title: str
    lang: str                      # Table 2: "MPI/C", "MPI/F77", "OMP/F77"
    kind: str                      # "mpi" | "omp"
    description: str
    functions: Tuple[str, ...]     # full inventory
    subset: Tuple[str, ...]        # the "important subset"
    dynamic_targets: Tuple[str, ...]
    scaling: str                   # "weak" | "strong"
    cpu_counts: Tuple[int, ...]
    #: build_exe(instrument_static) -> fresh ExecutableImage
    build_exe: Callable[[bool], ExecutableImage]
    #: make_program(n_cpus, scale) -> program(pctx) generator returning
    #: the rank's main-computation elapsed seconds.
    make_program: Callable[[int, float], Callable[[ProgramContext], Generator]]
    #: The paper omitted a Subset line for Sweep3d ("unnecessary").
    has_subset_policy: bool = True

    @property
    def n_functions(self) -> int:
        return len(self.functions)

    def validate(self) -> None:
        fset = set(self.functions)
        if len(fset) != len(self.functions):
            raise ValueError(f"{self.name}: duplicate function names")
        missing = [s for s in self.subset if s not in fset]
        if missing:
            raise ValueError(f"{self.name}: subset not in inventory: {missing}")
        missing = [s for s in self.dynamic_targets if s not in fset]
        if missing:
            raise ValueError(f"{self.name}: dynamic targets not in inventory: {missing}")


def _stable_unit(name: str) -> float:
    """Deterministic pseudo-random in [0, 1) derived from a name."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


class NoiseProfile:
    """High-frequency utility-call workload over the non-subset inventory.

    Distributes a per-phase call budget across the noisy functions with a
    hot/cold split (a handful of box-loop-style helpers take most calls,
    the long tail shares the rest) and per-function costs spread around a
    mean.  Costs and the split are deterministic functions of the names.
    """

    def __init__(
        self,
        functions: Sequence[str],
        hot_count: int = 10,
        hot_share: float = 0.8,
        mean_cost: float = 1.2e-6,
    ) -> None:
        if not functions:
            raise ValueError("noise profile needs at least one function")
        hot_count = min(hot_count, len(functions))
        if not 0.0 <= hot_share <= 1.0:
            raise ValueError("hot_share must be within [0, 1]")
        self.functions = list(functions)
        self.hot = self.functions[:hot_count]
        self.cold = self.functions[hot_count:]
        self.hot_share = hot_share if self.cold else 1.0
        #: Per-function body cost: mean_cost * [0.4x .. 1.9x].
        self.costs = {
            name: mean_cost * (0.4 + 1.5 * _stable_unit(name))
            for name in self.functions
        }

    def mean_call_cost(self) -> float:
        """Average body cost over one call-budget unit."""
        hot_n = len(self.hot)
        per_hot = self.hot_share / hot_n
        total = sum(self.costs[f] * per_hot for f in self.hot)
        if self.cold:
            per_cold = (1.0 - self.hot_share) / len(self.cold)
            total += sum(self.costs[f] * per_cold for f in self.cold)
        return total

    def hot_batches(self, calls: int) -> List[Tuple[str, int, float]]:
        """(function, n, cost) batches covering the hot share of ``calls``."""
        hot_calls = int(calls * self.hot_share)
        per_fn, extra = divmod(hot_calls, len(self.hot))
        out = []
        for i, fn in enumerate(self.hot):
            n = per_fn + (1 if i < extra else 0)
            if n > 0:
                out.append((fn, n, self.costs[fn]))
        return out

    def cold_batches(self, calls: int) -> List[Tuple[str, int, float]]:
        """(function, n, cost) batches covering the cold share of ``calls``."""
        if not self.cold:
            return []
        cold_calls = calls - int(calls * self.hot_share)
        per_fn, extra = divmod(cold_calls, len(self.cold))
        out = []
        for i, fn in enumerate(self.cold):
            n = per_fn + (1 if i < extra else 0)
            if n > 0:
                out.append((fn, n, self.costs[fn]))
        return out


def grid_dims(p: int) -> Tuple[int, int]:
    """Near-square 2D factorisation of ``p`` ranks (px >= py)."""
    if p < 1:
        raise ValueError("need at least one rank")
    py = int(p**0.5)
    while p % py != 0:
        py -= 1
    return p // py, py


def neighbors_2d(rank: int, px: int, py: int) -> dict:
    """N/S/E/W neighbour ranks of ``rank`` in a px x py grid (row-major),
    with None at domain boundaries."""
    ix, iy = rank % px, rank // px
    return {
        "west": rank - 1 if ix > 0 else None,
        "east": rank + 1 if ix < px - 1 else None,
        "south": rank - px if iy > 0 else None,
        "north": rank + px if iy < py - 1 else None,
    }
