"""Sppm — the ASCI 3D gas-dynamics kernel (MPI/F77).

A simplified piecewise-parabolic-method hydrodynamics code: directional
sweeps (x, y, z) per timestep over a per-rank brick, a global Courant
reduction, and boundary exchanges with large halo payloads (rendezvous
protocol).  Matching the paper: **22** functions, **7** of which do the
heavy hydro work; the functions are few and large, so Sppm's call
intensity — and therefore its instrumentation overhead — is far milder
than Smg98's (Figure 7(b): "the difference is not as extreme").

Real numerics: each rank advects a 1D conservative gas profile per
sweep; total mass is conserved to machine precision (test invariant).
"""

from __future__ import annotations

import math
from typing import Generator, List

import numpy as np

from ..program import ExecutableImage, ProgramContext
from .base import AppSpec, MPI_SCALING_CPUS, NoiseProfile, grid_dims, neighbors_2d

__all__ = ["SPPM", "build_exe", "make_program"]

# 7 heavy hydro functions (the Subset / Dynamic targets).
HYDRO_FUNCS = (
    "sppm_hydro_x",
    "sppm_hydro_y",
    "sppm_hydro_z",
    "sppm_riemann",
    "sppm_interpolate_parabola",
    "sppm_eos",
    "sppm_flatten",
)
# 15 support functions.
SUPPORT_FUNCS = (
    "sppm_main",
    "sppm_init",
    "sppm_decomp",
    "sppm_bdrys",
    "sppm_courant",
    "sppm_timer_start",
    "sppm_timer_stop",
    "sppm_dump_output",
    "sppm_checksum",
    "sppm_copy_strip",
    "sppm_pack_bdry",
    "sppm_unpack_bdry",
    "sppm_gridmap",
    "sppm_zone_index",
    "sppm_monitor",
)
ALL_FUNCS = HYDRO_FUNCS + SUPPORT_FUNCS  # 22
assert len(ALL_FUNCS) == 22

#: Timesteps at scale 1.0.
STEPS = 20
#: Utility calls per step per rank (moderate: big functions, few calls).
NOISE_CALLS_PER_STEP = 75_000
#: Per-sweep hydro compute (s): body + riemann + parabola + eos.
SWEEP_BODY_COST = 0.30
RIEMANN_COST = 0.15
PARABOLA_COST = 0.10
EOS_COST = 0.05
#: Per-step synchronisation/imbalance growth with log2(P) (weak scaling).
SYNC_GROWTH_COST = 0.115
#: Halo payload per exchange (large: rendezvous protocol).
HALO_BYTES = 256 * 1024

_noise = NoiseProfile(
    ["sppm_copy_strip", "sppm_pack_bdry", "sppm_unpack_bdry", "sppm_zone_index",
     "sppm_gridmap", "sppm_monitor", "sppm_timer_start", "sppm_timer_stop"],
    hot_count=4,
    hot_share=0.85,
    mean_cost=1.1e-6,
)


def build_exe(instrument_static: bool) -> ExecutableImage:
    exe = ExecutableImage("sppm")
    for axis in "xyz":
        exe.define(f"sppm_hydro_{axis}", body=_make_hydro(axis), module="hydro")
    exe.define("sppm_riemann", body=_riemann, module="hydro")
    exe.define("sppm_interpolate_parabola", body=_parabola, module="hydro")
    exe.define("sppm_eos", body=_eos, module="hydro")
    exe.define("sppm_flatten", body=_flatten, module="hydro")
    exe.define("sppm_courant", body=_courant, module="driver")
    exe.define("sppm_bdrys", body=_bdrys, module="driver")
    for name in ALL_FUNCS:
        if name not in exe:
            exe.define(name, module="driver")
    if instrument_static:
        exe.instrument_statically()
    return exe


class _SppmState:
    def __init__(self, rank: int, n_procs: int, scale: float) -> None:
        self.rank = rank
        self.n_procs = n_procs
        self.scale = scale
        self.px, self.py = grid_dims(n_procs)
        self.neighbors = neighbors_2d(rank, self.px, self.py)
        self.steps = max(1, round(STEPS * scale))
        # Real 1D conservative gas profile per rank.
        n = 512
        x = np.linspace(0.0, 1.0, n, endpoint=False)
        self.rho = 1.0 + 0.3 * np.sin(2 * np.pi * (x + 0.1 * rank))
        self.velocity = 0.4
        self.dx = 1.0 / n
        self.initial_mass = float(self.rho.sum() * self.dx)
        self.dt = 0.0
        self.mass_history: List[float] = []


def _advect(state: _SppmState) -> None:
    """First-order conservative upwind advection (mass-preserving)."""
    c = state.velocity * state.dt / state.dx
    c = max(0.0, min(c, 0.9))
    flux = state.rho * c
    state.rho = state.rho - flux + np.roll(flux, 1)


def _make_hydro(axis: str):
    def hydro(pctx: ProgramContext) -> Generator:
        state: _SppmState = pctx.props["sppm"]
        yield from pctx.call("sppm_flatten")
        yield from pctx.call("sppm_interpolate_parabola")
        yield from pctx.call("sppm_riemann")
        yield from pctx.call("sppm_eos")
        if axis == "x":
            _advect(state)  # real numerics once per step
        pctx.charge(SWEEP_BODY_COST)
        for fn, n, cost in _noise.hot_batches(NOISE_CALLS_PER_STEP // 3):
            yield from pctx.call_batch(fn, n, cost)

    hydro.__name__ = f"sppm_hydro_{axis}"
    return hydro


def _riemann(pctx: ProgramContext) -> None:
    pctx.charge(RIEMANN_COST)


def _parabola(pctx: ProgramContext) -> None:
    pctx.charge(PARABOLA_COST)


def _eos(pctx: ProgramContext) -> None:
    pctx.charge(EOS_COST)


def _flatten(pctx: ProgramContext) -> None:
    pctx.charge(0.02)


def _courant(pctx: ProgramContext) -> Generator:
    """Global timestep: allreduce(min) of the local CFL limit."""
    state: _SppmState = pctx.props["sppm"]
    local_dt = 0.9 * state.dx / max(abs(state.velocity), 1e-12)
    pctx.charge(0.01)
    state.dt = yield from pctx.mpi.comm.allreduce(local_dt, op=min)
    return state.dt


def _bdrys(pctx: ProgramContext) -> Generator:
    """Ghost-zone exchange with large halo payloads + sync growth."""
    state: _SppmState = pctx.props["sppm"]
    pctx.charge(0.02)
    if state.n_procs > 1:
        pctx.charge(SYNC_GROWTH_COST * math.log2(state.n_procs))
    comm = pctx.mpi.comm
    halo = np.zeros(HALO_BYTES // 8)
    for direction, opposite in (("east", "west"), ("north", "south")):
        dest = state.neighbors[direction]
        src = state.neighbors[opposite]
        tag = 300 + (0 if direction == "east" else 1)
        if dest is not None and src is not None:
            yield from comm.sendrecv(halo, dest, sendtag=tag, source=src, recvtag=tag)
        elif dest is not None:
            yield from comm.send(halo, dest, tag=tag)
        elif src is not None:
            yield from comm.recv(source=src, tag=tag)


def make_program(n_procs: int, scale: float = 1.0):
    def program(pctx: ProgramContext) -> Generator:
        yield from pctx.call("MPI_Init")
        state = _SppmState(pctx.mpi.rank, n_procs, scale)
        pctx.props["sppm"] = state
        yield from pctx.call("sppm_init")
        comm = pctx.mpi.comm
        yield from comm.barrier()
        t0 = pctx.now
        for _step in range(state.steps):
            yield from pctx.call("sppm_courant")
            yield from pctx.call("sppm_bdrys")
            yield from pctx.call("sppm_hydro_x")
            yield from pctx.call("sppm_hydro_y")
            yield from pctx.call("sppm_hydro_z")
            for fn, n, cost in _noise.cold_batches(NOISE_CALLS_PER_STEP):
                yield from pctx.call_batch(fn, n, cost)
            state.mass_history.append(float(state.rho.sum() * state.dx))
        yield from comm.barrier()
        elapsed = pctx.now - t0
        yield from pctx.call("MPI_Finalize")
        return elapsed

    return program


SPPM = AppSpec(
    name="sppm",
    title="Sppm",
    lang="MPI/F77",
    kind="mpi",
    description="A 3D gas dynamics problem",
    functions=ALL_FUNCS,
    subset=HYDRO_FUNCS,
    dynamic_targets=HYDRO_FUNCS,
    scaling="weak",
    cpu_counts=MPI_SCALING_CPUS,
    build_exe=build_exe,
    make_program=make_program,
)
SPPM.validate()
