"""Declarative sweep points — the unit of work of :class:`SweepRunner`.

A :class:`SweepPoint` names one cell of an experiment grid — which
simulation to run (``kind``), on which application/policy, at which
process count, on which machine, with which seed and workload scale —
without running anything.  Points are frozen, hashable and picklable,
so they travel to worker processes unchanged, and they canonicalize to
a stable JSON document that (together with the machine's cost-model
constants and the package version) forms the content-addressed cache
key (see :mod:`repro.runner.cache`).

Three kinds map onto the paper's experiments:

``policy``
    One Figure 7 / trace-volume cell: ``run_policy(app, policy, procs)``.
``confsync``
    One Figure 8 cell: ``measure_confsync(procs, change=, stats=, reps=)``.
``instrument``
    One Figure 9 cell: ``measure_create_and_instrument(app, procs)``.

A fourth kind, ``selftest``, exercises the worker machinery itself
(echo / sleep / raise / crash) and exists for the runner's own tests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple

from ..cluster import POWER3_SP, MachineSpec

__all__ = ["SweepPoint", "POINT_KINDS"]

#: Recognised point kinds (``selftest`` is internal to the runner tests).
POINT_KINDS = ("policy", "confsync", "instrument", "selftest")

#: Parameter value types that canonicalize losslessly to JSON.
_PARAM_TYPES = (bool, int, float, str, type(None))


def _faults_params(faults: Any) -> Tuple[Tuple[str, Any], ...]:
    """Canonicalize an optional fault plan into point params.

    Accepts a :class:`~repro.faults.FaultPlan` or its canonical JSON
    string.  Fault-free points carry no ``faults`` param at all, so
    their cache keys are unchanged from pre-faults versions of the
    point grid.
    """
    if faults is None:
        return ()
    if not isinstance(faults, str):
        if faults.is_empty:
            return ()
        faults = faults.canonical()
    return (("faults", faults),)


@dataclass(frozen=True)
class SweepPoint:
    """One cell of an experiment grid, described but not yet run."""

    kind: str
    procs: int
    app: Optional[str] = None
    policy: Optional[str] = None
    machine: MachineSpec = POWER3_SP
    seed: int = 0
    scale: float = 1.0
    #: Extra kind-specific parameters, kept sorted so two points built
    #: with the same parameters in any order compare (and hash) equal.
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in POINT_KINDS:
            raise ValueError(f"unknown point kind {self.kind!r}; known: {POINT_KINDS}")
        if self.procs < 1:
            raise ValueError("procs must be >= 1")
        for name, value in self.params:
            if not isinstance(value, _PARAM_TYPES):
                raise TypeError(
                    f"param {name!r} has non-canonicalizable type {type(value).__name__}"
                )
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    # -- constructors ---------------------------------------------------------

    @classmethod
    def policy_cell(
        cls,
        app: str,
        policy: str,
        procs: int,
        *,
        scale: float = 1.0,
        machine: MachineSpec = POWER3_SP,
        seed: int = 0,
        faults: Any = None,
    ) -> "SweepPoint":
        """One (app, policy, CPU-count) cell of Figure 7 / trace volume."""
        return cls("policy", procs, app=app, policy=policy,
                   machine=machine, seed=seed, scale=scale,
                   params=_faults_params(faults))

    @classmethod
    def confsync(
        cls,
        procs: int,
        *,
        change: bool = False,
        stats: bool = False,
        reps: int = 16,
        machine: MachineSpec = POWER3_SP,
        seed: int = 0,
    ) -> "SweepPoint":
        """One Figure 8 cell: average VT_confsync cost."""
        return cls("confsync", procs, machine=machine, seed=seed,
                   params=(("change", change), ("reps", reps), ("stats", stats)))

    @classmethod
    def instrument(
        cls,
        app: str,
        procs: int,
        *,
        scale: float = 0.02,
        machine: MachineSpec = POWER3_SP,
        seed: int = 0,
        faults: Any = None,
    ) -> "SweepPoint":
        """One Figure 9 cell: dynprof's create+instrument wall time."""
        return cls("instrument", procs, app=app,
                   machine=machine, seed=seed, scale=scale,
                   params=_faults_params(faults))

    @classmethod
    def selftest(cls, mode: str = "echo", **params: Any) -> "SweepPoint":
        """Internal: a point exercising the worker machinery itself."""
        items = tuple({"mode": mode, **params}.items())
        return cls("selftest", 1, params=items)

    # -- accessors ------------------------------------------------------------

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def label(self) -> str:
        """Short human-readable identity, used in telemetry events."""
        parts = [self.kind]
        if self.app:
            parts.append(self.app)
        if self.policy:
            parts.append(self.policy)
        flags = ",".join(f"{k}={v}" for k, v in self.params)
        tail = f"@{self.procs}"
        if flags:
            tail += f"[{flags}]"
        return ":".join(parts) + tail

    def canonical(self) -> Dict[str, Any]:
        """Stable, JSON-safe description of the point.

        Includes every cost-model constant of the machine, so a point
        run against an ablated :class:`MachineSpec` never aliases the
        stock one in the cache.
        """
        return {
            "kind": self.kind,
            "app": self.app,
            "policy": self.policy,
            "procs": self.procs,
            "seed": self.seed,
            "scale": self.scale,
            "params": dict(self.params),
            "machine": asdict(self.machine),
        }

    @classmethod
    def from_canonical(cls, doc: Dict[str, Any]) -> "SweepPoint":
        """Rebuild a point from :meth:`canonical` output.

        The round trip is exact — same cache key, same label — which is
        what lets socket workers on other hosts receive points as JSON
        and still write into the shared content-addressed cache.
        """
        machine = doc["machine"]
        if not isinstance(machine, MachineSpec):
            machine = MachineSpec(**machine)
        return cls(
            kind=doc["kind"],
            procs=doc["procs"],
            app=doc.get("app"),
            policy=doc.get("policy"),
            machine=machine,
            seed=doc.get("seed", 0),
            scale=doc.get("scale", 1.0),
            params=tuple(dict(doc.get("params") or {}).items()),
        )
