"""Worker-side execution of sweep points.

:func:`execute_point` is the function the runner submits to its
:class:`~concurrent.futures.ProcessPoolExecutor`; it must stay a
module-level callable so it pickles by reference.  It never raises:
every outcome — success, application error, per-point timeout — comes
back as a JSON-safe *envelope* dict so the parent can cache, report and
aggregate uniformly.  The only thing that escapes an envelope is a
worker-process death (``os._exit``, OOM-kill, segfault analog), which
surfaces in the parent as ``BrokenProcessPool`` and drives the
retry-once semantics in :mod:`repro.runner.runner`.

Per-point timeouts use ``SIGALRM``: the pool's fork-started workers run
tasks on their main thread, so the alarm interrupts even a
simulation-bound point.  Off the main thread (e.g. a threaded caller
using the serial path) the timeout is skipped rather than mis-armed.

The experiment imports are intentionally lazy: ``repro.experiments``
imports this package for its ``runner=`` plumbing, so module-level
imports the other way would be circular.
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import time
import traceback
from dataclasses import asdict
from typing import Any, Dict, Optional

from .. import obs
from ..obs import timeseries as obs_timeseries
from ..obs import trace as obs_trace
from ..replay import hooks as replay_hooks
from ..replay.errors import DivergenceError
from ..replay.orderlog import OrderLog
from .point import SweepPoint

__all__ = ["execute_point", "PointTimeout"]


class PointTimeout(Exception):
    """Raised inside a worker when a point exceeds its time budget."""


def _point_faults(point: SweepPoint):
    """Parse a point's optional ``faults`` param into a FaultPlan."""
    doc = point.param("faults")
    if doc is None:
        return None
    from ..faults import FaultPlan

    return FaultPlan.from_json(doc)


def _dispatch(point: SweepPoint) -> Dict[str, Any]:
    """Run the simulation a point describes; returns the raw payload."""
    if point.kind == "policy":
        from ..apps import get_app
        from ..dynprof import run_policy

        result = run_policy(
            get_app(point.app), point.policy, point.procs,
            scale=point.scale, machine=point.machine, seed=point.seed,
            faults=_point_faults(point),
        )
        return asdict(result)
    if point.kind == "confsync":
        from ..experiments.fig8 import measure_confsync

        elapsed = measure_confsync(
            point.procs, machine=point.machine,
            change=bool(point.param("change", False)),
            stats=bool(point.param("stats", False)),
            reps=int(point.param("reps", 16)),
            seed=point.seed,
        )
        return {"time": elapsed}
    if point.kind == "instrument":
        plan = _point_faults(point)
        if plan is not None:
            from ..experiments.fig9 import measure_create_and_instrument_detail

            return measure_create_and_instrument_detail(
                point.app, point.procs, point.machine,
                scale=point.scale, seed=point.seed, faults=plan,
            )
        from ..experiments.fig9 import measure_create_and_instrument

        elapsed = measure_create_and_instrument(
            point.app, point.procs, point.machine,
            scale=point.scale, seed=point.seed,
        )
        return {"time": elapsed}
    if point.kind == "selftest":
        return _selftest(point)
    raise ValueError(f"unknown point kind {point.kind!r}")


def _selftest(point: SweepPoint) -> Dict[str, Any]:
    """Worker behaviours the runner's own tests need to provoke."""
    mode = point.param("mode", "echo")
    if mode == "echo":
        return {"time": 0.0, "echo": point.param("value")}
    if mode == "sleep":
        time.sleep(float(point.param("seconds", 60.0)))
        return {"time": 0.0}
    if mode == "raise":
        raise RuntimeError("selftest: deliberate failure")
    if mode == "crash":
        os._exit(17)
    if mode == "crash_once":
        # Dies on the first attempt, succeeds on the retry: the marker
        # file records that the crash already happened.
        marker = str(point.param("marker"))
        if os.path.exists(marker):
            return {"time": 0.0, "retried": True}
        with open(marker, "w", encoding="utf-8"):
            pass
        os._exit(17)
    raise ValueError(f"unknown selftest mode {mode!r}")


def execute_point(
    point: SweepPoint,
    timeout: Optional[float] = None,
    collect_obs: bool = False,
    collect_trace: bool = False,
    trace_detail: str = "fine",
    trace_capacity: int = obs_trace.DEFAULT_CAPACITY,
    trace_compact: bool = False,
    obs_sample: Optional[float] = None,
    record_order: bool = False,
    replay_log: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one point under an optional wall-clock budget.

    Returns an envelope: ``{"status": "ok", "payload": ..., "wall_time"}``
    on success, or ``{"status": "timeout"|"error", "error": ...,
    "wall_time"}`` otherwise.  With ``collect_obs`` the point runs under
    a fresh :mod:`repro.obs` registry and the envelope carries its
    snapshot under ``"obs"``; with ``collect_trace`` it runs under a
    fresh :mod:`repro.obs.trace` tracer and the envelope carries the
    trace document under ``"trace"`` (both partial on timeout/error) —
    outside the cached payload, so cache entries stay identical with or
    without observation.  ``trace_compact`` turns on ring compaction
    (fold repeated event subsequences before dropping) in that tracer.
    With ``obs_sample`` (a simulated-seconds interval) the point also
    runs under a fresh :mod:`repro.obs.timeseries` recorder — a
    registry is opened even without ``collect_obs``, since the sampler
    needs something to sample — and the envelope carries the sampled
    series under ``"timeseries"``.

    With ``record_order`` the point runs under a fresh
    :mod:`repro.replay` order recorder and the envelope carries the
    serialized :class:`~repro.replay.orderlog.OrderLog` (base64) under
    ``"order_log"`` — like obs and traces, outside the cached payload.
    With ``replay_log`` (a base64 order log; mutually exclusive with
    ``record_order``) the point is *verified* against the recorded
    decision sequence: the first divergent decision yields a
    ``"diverged"`` envelope with the structured report under
    ``"divergence"``.
    """
    start = time.perf_counter()
    use_alarm = (
        timeout is not None
        and timeout > 0
        and threading.current_thread() is threading.main_thread()
    )
    previous_handler: Any = None
    try:
        if use_alarm:
            def _on_alarm(signum: int, frame: Any) -> None:
                raise PointTimeout

            previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        registry: Optional[obs.MetricsRegistry] = None
        tracer: Optional[obs_trace.Tracer] = None
        recorder: Optional[obs_timeseries.TimeSeriesRecorder] = None
        order_recorder: Optional[replay_hooks.OrderRecorder] = None
        try:
            with contextlib.ExitStack() as stack:
                if collect_obs or obs_sample:
                    registry = stack.enter_context(obs.collecting())
                if collect_trace:
                    tracer = stack.enter_context(obs_trace.tracing(
                        capacity=trace_capacity, detail=trace_detail,
                        compact=trace_compact,
                    ))
                if obs_sample:
                    recorder = stack.enter_context(
                        obs_timeseries.sampling(interval=obs_sample))
                if record_order:
                    # Deterministic meta only (no wall clocks): recording
                    # the same run twice must yield byte-identical logs.
                    order_recorder = stack.enter_context(
                        replay_hooks.recording(meta={
                            "format": "repro.replay",
                            "point": point.canonical(),
                            "label": point.label,
                        }))
                elif replay_log:
                    stack.enter_context(replay_hooks.replaying(
                        OrderLog.from_b64(replay_log)))
                payload = _dispatch(point)
            envelope = {
                "status": "ok",
                "payload": payload,
                "wall_time": time.perf_counter() - start,
            }
        except PointTimeout:
            envelope = {
                "status": "timeout",
                "error": f"{point.label}: exceeded {timeout:g}s budget",
                "wall_time": time.perf_counter() - start,
            }
        except DivergenceError as exc:
            envelope = {
                "status": "diverged",
                "error": f"{point.label}: {exc}",
                "divergence": exc.to_dict(),
                "wall_time": time.perf_counter() - start,
            }
        except Exception:
            envelope = {
                "status": "error",
                "error": traceback.format_exc(limit=20),
                "wall_time": time.perf_counter() - start,
            }
        if registry is not None and collect_obs:
            envelope["obs"] = registry.snapshot()
        if tracer is not None:
            envelope["trace"] = tracer.snapshot()
        if recorder is not None:
            envelope["timeseries"] = recorder.snapshot()
        if order_recorder is not None:
            # Partial on timeout/error — still useful for diagnosis.
            envelope["order_log"] = order_recorder.log.to_b64()
        return envelope
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous_handler)
