"""Content-addressed on-disk cache for sweep-point results.

The simulations are deterministic: a point's result is a pure function
of its configuration, the machine's cost-model constants, and the
package version.  :func:`point_key` hashes exactly those inputs
(SHA-256 over canonical JSON), so a cached entry is valid forever —
there is no TTL and no invalidation protocol; changing any input
changes the key.

Entries are JSON files under ``<root>/<key[:2]>/<key>.json`` holding
the key, the point's canonical description (for humans and audit), and
the result payload.  Writes are atomic (temp file + ``os.replace``);
a corrupted or mismatched entry is treated as a miss and discarded, so
a damaged cache degrades to recomputation, never to a crash or a wrong
result.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

from ..obs import get as _obs_get
from .point import SweepPoint

__all__ = ["point_key", "ResultCache", "default_cache_dir"]

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def _package_version() -> str:
    # Imported lazily: repro/__init__ imports this package, so a
    # module-level "from .. import __version__" would be circular.
    from .. import __version__

    return __version__


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/sweep``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "sweep"


def point_key(point: SweepPoint, version: Optional[str] = None) -> str:
    """Stable SHA-256 key of one sweep point.

    Hashes the canonicalized point (which embeds every cost-model
    constant of its machine) plus the package version, so results
    survive across processes and runs but never across a cost-model
    ablation or a release that may change the simulation.
    """
    doc = {
        "point": point.canonical(),
        "version": version if version is not None else _package_version(),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of content-addressed sweep results."""

    #: Backend name reported by repr/telemetry (subclasses override).
    backend_name = "directory"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        #: Corrupt entries silently turned into misses so far — surfaced
        #: via the ``runner.cache_corrupt_discards`` obs counter and the
        #: sweep telemetry summary instead of vanishing without a trace.
        self.corrupt_discards = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _count_corrupt(self) -> None:
        self.corrupt_discards += 1
        registry = _obs_get()
        if registry.enabled:
            registry.inc("runner.cache_corrupt_discards")

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored entry for ``key``, or None on miss *or* corruption.

        A corrupted entry (unreadable, invalid JSON, wrong shape, or a
        key that does not match its filename) is deleted so the slot is
        clean for the recomputed result; each discard is counted.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, ValueError, UnicodeDecodeError):
            self._discard(path)
            self._count_corrupt()
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key
            or "payload" not in entry
        ):
            self._discard(path)
            self._count_corrupt()
            return None
        return entry

    def put(
        self,
        key: str,
        point: SweepPoint,
        payload: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Atomically store ``payload`` for ``key``."""
        entry = {
            "key": key,
            "version": _package_version(),
            "point": point.canonical(),
            "payload": payload,
        }
        if meta:
            entry["meta"] = meta
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=f".{key[:8]}-", suffix=".tmp",
                                   dir=path.parent)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _iter_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        # Interrupted writes can leave ".<key>-*.tmp" droppings next to
        # the entries; anything dot-prefixed is not an entry.
        for path in self.root.glob("??/*.json"):
            if not path.name.startswith("."):
                yield path

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_paths())

    def __contains__(self, key: str) -> bool:
        """True only if :meth:`get` would hit.

        A bare ``is_file()`` check would report a corrupted entry as
        present while ``get`` discards it and returns None; containment
        therefore validates (and, like ``get``, discards) the entry.
        """
        return self.get(key) is not None

    def clear(self) -> int:
        """Remove every entry (and stale temp files); returns how many
        entries were removed."""
        n = 0
        for path in list(self._iter_paths()):
            self._discard(path)
            n += 1
        if self.root.is_dir():
            for tmp in self.root.glob("??/.*.tmp"):
                self._discard(tmp)
        return n

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def __repr__(self) -> str:
        # O(1) on purpose: logging a runner must never walk the cache
        # directory (``len(self)`` scans every entry).
        return f"<{type(self).__name__} {self.backend_name}:{self.root}>"
