"""The sweep execution engine.

:class:`SweepRunner` takes a grid of :class:`SweepPoint`s and produces
one :class:`PointResult` per distinct point:

1. **Cache probe** — every point is first looked up in the
   content-addressed :class:`~repro.runner.cache.ResultCache` (if one
   is configured); hits never touch a worker.
2. **Fan-out** — misses run on an executor backend
   (:mod:`repro.svc.executors`): in-process serial for ``jobs=1``, a
   ``ProcessPoolExecutor`` with ``jobs`` workers otherwise, or — via
   ``executor=`` — socket workers on other hosts.  The simulations are
   deterministic, so every path returns bit-identical floats to the
   serial one — that equivalence is the acceptance test of the whole
   subsystem.
3. **Failure containment** — a point that raises or exceeds the
   per-point ``timeout`` becomes a failed :class:`PointResult`; a point
   whose *worker process dies* (``BrokenProcessPool``) is retried once
   on a fresh pool before being reported as ``crashed``.  One bad point
   never takes down the sweep.
4. **Telemetry** — progress is emitted as JSON lines through
   :class:`~repro.runner.telemetry.SweepTelemetry` (points done /
   cached / failed, per-point sim time, final cache hit rate).

:meth:`SweepRunner.run_grid` is the strict variant the figure harness
uses: it raises :class:`SweepError` unless every point succeeded, and
returns payloads aligned with the input order (duplicates allowed —
they are computed once).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Sequence, Union

from ..obs import MetricsRegistry
from ..obs import get as _obs_get
from ..obs.trace import DEFAULT_CAPACITY as DEFAULT_TRACE_CAPACITY
from .cache import ResultCache, point_key
from .point import SweepPoint
from .retry import RetryPolicy
from .telemetry import SweepTelemetry

__all__ = ["SweepRunner", "PointResult", "SweepError", "default_jobs"]


def default_jobs() -> int:
    """A worker count matched to the machine (for ``--jobs 0``)."""
    return max(1, os.cpu_count() or 1)


@dataclass
class PointResult:
    """Outcome of one sweep point."""

    point: SweepPoint
    #: "ok" | "error" | "timeout" | "crashed" | "diverged"
    status: str
    payload: Optional[Dict[str, Any]] = None
    cached: bool = False
    wall_time: float = 0.0
    attempts: int = 1
    error: Optional[str] = None
    #: Structured divergence report (status == "diverged" only): the
    #: first decision where the run departed from its replay log.
    divergence: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def sim_time(self) -> Optional[float]:
        """Simulated seconds the point reported (``payload["time"]``)."""
        if self.payload is None:
            return None
        value = self.payload.get("time")
        return float(value) if isinstance(value, (int, float)) else None


class SweepError(RuntimeError):
    """A strict sweep had failing points."""

    def __init__(self, failures: List[PointResult]) -> None:
        self.failures = failures
        heads = "; ".join(
            f"{r.point.label} [{r.status}]" for r in failures[:3]
        )
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        detail = ""
        if failures and failures[0].error:
            first = failures[0].error.strip().splitlines()[-1]
            detail = f"\nfirst error: {first}"
        super().__init__(
            f"{len(failures)} sweep point(s) failed: {heads}{more}{detail}"
        )


class SweepRunner:
    """Parallel, cached executor for experiment grids.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` (the default) executes in-process and
        ``0`` means one worker per CPU.
    cache:
        A :class:`ResultCache`, a directory path to open one at, or
        None to disable caching.
    timeout:
        Per-point wall-clock budget in seconds (None = unlimited).
    retries:
        How many times a point is re-submitted after its worker
        process crashes (the paper-prescribed default is one retry).
        Shorthand for ``retry=RetryPolicy(max_attempts=retries + 1)``.
    retry:
        A full :class:`RetryPolicy` (attempt budget, exponential
        backoff, deterministic per-point jitter); overrides
        ``retries`` when given.
    telemetry:
        A :class:`SweepTelemetry`, or a text stream to emit JSON lines
        to, or None for counters-only telemetry.
    collect_obs:
        When True each computed point runs under a fresh
        :mod:`repro.obs` registry; its snapshot rides the telemetry
        ``point`` event and is merged into :attr:`obs`.  Cached points
        contribute nothing (no simulation ran).  Payloads — and thus
        cache entries and figures — are unaffected.
    collect_trace:
        When True each computed point runs under a fresh
        :mod:`repro.obs.trace` tracer; the per-point trace document is
        kept in :attr:`traces` keyed by point label.  Like obs
        snapshots, traces ride the worker envelope and never enter the
        cached payload.
    trace_detail / trace_capacity / trace_compact:
        Passed through to the per-point tracer (``"fine"``/``"coarse"``,
        the per-track ring-buffer bound, and whether a full ring folds
        repeated event subsequences before dropping).
    obs_sample:
        A simulated-seconds interval; when set each computed point runs
        under a fresh :mod:`repro.obs.timeseries` recorder sampled at
        that interval, and the per-point series document is kept in
        :attr:`timeseries` keyed by point label.  Rides the worker
        envelope like obs/trace — never the cached payload, and not
        part of the point key, so cache entries are shared between
        sampled and unsampled sweeps.
    record_order:
        When True each computed point runs under a fresh
        :mod:`repro.replay` order recorder; the serialized order log
        (base64) is kept in :attr:`order_logs` keyed by point label.
        Rides the worker envelope — never the cached payload — so
        recording leaves payloads, figures and cache entries
        byte-identical.
    replay_logs:
        A ``label -> base64 order log`` mapping (ignored when
        ``record_order`` is set); a point whose label has a log is
        *verified* against it and comes back ``"diverged"`` — with the
        first divergent decision in :attr:`PointResult.divergence` —
        if its decision sequence departs from the recording.
    executor:
        A :class:`repro.svc.executors.ExecutorBackend` or a spec string
        (``"serial"``, ``"process[:N]"``, ``"socket:HOST:PORT"``).
        None (the default) derives the historical serial/process-pool
        behaviour from ``jobs``.  The ``cache`` parameter likewise
        accepts any :class:`repro.svc.backends.CacheBackend` — memory,
        sqlite, http — in place of a directory path.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Union[ResultCache, str, Path, None] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        retry: Optional[RetryPolicy] = None,
        telemetry: Union[SweepTelemetry, IO[str], None] = None,
        collect_obs: bool = False,
        collect_trace: bool = False,
        trace_detail: str = "fine",
        trace_capacity: int = DEFAULT_TRACE_CAPACITY,
        trace_compact: bool = False,
        executor: Any = None,
        obs_sample: Optional[float] = None,
        record_order: bool = False,
        replay_logs: Optional[Dict[str, str]] = None,
    ) -> None:
        if jobs < 0:
            raise ValueError("jobs must be >= 0")
        self.jobs = jobs if jobs > 0 else default_jobs()
        if cache is not None and isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        # Anything else duck-types as a repro.svc CacheBackend
        # (get/put); the directory ResultCache is simply one of them.
        self.cache = cache
        self.executor = executor
        self.timeout = timeout
        if retry is None:
            retry = RetryPolicy(max_attempts=max(0, retries) + 1)
        self.retry = retry
        if telemetry is None or isinstance(telemetry, SweepTelemetry):
            self.telemetry = telemetry or SweepTelemetry()
        else:
            self.telemetry = SweepTelemetry(stream=telemetry)
        self.collect_obs = collect_obs
        self.collect_trace = collect_trace
        self.trace_detail = trace_detail
        self.trace_capacity = trace_capacity
        self.trace_compact = trace_compact
        if obs_sample is not None and obs_sample <= 0:
            raise ValueError("obs_sample interval must be > 0")
        self.obs_sample = obs_sample
        self.record_order = record_order
        self.replay_logs = dict(replay_logs) if replay_logs else {}
        self._obs = _obs_get()
        #: Simulator metrics merged across every computed point.
        self.obs = MetricsRegistry()
        #: Per-point trace documents (label -> trace dict), computed
        #: points only — cached points ran no simulation to trace.
        self.traces: Dict[str, Dict[str, Any]] = {}
        #: Per-point sampled time-series documents (label -> snapshot),
        #: computed points only, populated when ``obs_sample`` is set.
        self.timeseries: Dict[str, Dict[str, Any]] = {}
        #: Per-point recorded order logs (label -> base64 RRLG bytes),
        #: computed points only, populated when ``record_order`` is set.
        self.order_logs: Dict[str, str] = {}

    @property
    def retries(self) -> int:
        """Crash-retry budget per point (back-compat view of the policy)."""
        return self.retry.max_attempts - 1

    # -- public API -----------------------------------------------------------

    def run(self, points: Sequence[SweepPoint]) -> Dict[SweepPoint, PointResult]:
        """Execute a grid; returns one result per *distinct* point."""
        unique = list(dict.fromkeys(points))
        results: Dict[SweepPoint, PointResult] = {}
        corrupt_base = getattr(self.cache, "corrupt_discards", 0)

        cached: List[PointResult] = []
        if self.cache is not None:
            for p in unique:
                entry = self.cache.get(point_key(p))
                if entry is not None:
                    r = PointResult(p, "ok", payload=entry["payload"],
                                    cached=True, attempts=0)
                    results[p] = r
                    cached.append(r)

        self.telemetry.sweep_start(
            total=len(unique), cached=len(cached), jobs=self.jobs
        )
        for r in cached:
            self._report(r)

        missing = [p for p in unique if p not in results]
        if missing:
            self._execute(missing, results)
        self.telemetry.corrupt_discards = (
            getattr(self.cache, "corrupt_discards", 0) - corrupt_base
        )
        self.telemetry.sweep_end()
        return results

    def run_grid(self, points: Sequence[SweepPoint]) -> List[Dict[str, Any]]:
        """Strict run: every point must succeed.

        Returns payloads aligned with ``points`` (duplicates share one
        execution); raises :class:`SweepError` listing the failures
        otherwise.
        """
        results = self.run(points)
        failures = [r for r in results.values() if not r.ok]
        if failures:
            raise SweepError(failures)
        return [results[p].payload for p in points]  # type: ignore[misc]

    # -- execution paths ------------------------------------------------------

    def _exec_spec(self):
        """The :class:`repro.svc.executors.ExecSpec` for this sweep."""
        from ..svc.executors import ExecSpec

        return ExecSpec(
            timeout=self.timeout,
            collect_obs=self.collect_obs,
            collect_trace=self.collect_trace,
            trace_detail=self.trace_detail,
            trace_capacity=self.trace_capacity,
            trace_compact=self.trace_compact,
            obs_sample=self.obs_sample,
            record_order=self.record_order,
            replay_logs=self.replay_logs,
            retry=self.retry,
            jobs=self.jobs,
            on_retry=self._on_retry,
        )

    def _resolve_executor(self):
        """The executor backend this sweep runs on.

        ``executor=None`` reproduces the historical behaviour exactly:
        ``jobs == 1`` runs in-process and serial, more jobs fan out
        over a process pool with wave-retry crash semantics.  A spec
        string or a :class:`~repro.svc.executors.ExecutorBackend`
        overrides that.  (Imported lazily — :mod:`repro.svc` builds on
        this module.)
        """
        from ..svc.executors import (
            ProcessPoolBackend,
            SerialBackend,
            make_executor_backend,
        )

        if self.executor is None:
            return SerialBackend() if self.jobs == 1 else ProcessPoolBackend(self.jobs)
        backend = make_executor_backend(self.executor, jobs=self.jobs)
        self.executor = backend  # keep the instance (socket listeners etc.)
        return backend

    def _on_retry(self, label: str, key: str, attempt: int, delay: float) -> None:
        self.telemetry.retry_scheduled(
            label=label, key=key, attempt=attempt, delay=delay
        )
        if self._obs.enabled:
            self._obs.inc("runner.retries")

    def _execute(
        self,
        points: List[SweepPoint],
        results: Dict[SweepPoint, PointResult],
    ) -> None:
        backend = self._resolve_executor()
        for point, envelope, attempts in backend.run(points, self._exec_spec()):
            self._finish(point, envelope, attempts=attempts, results=results)

    # -- bookkeeping ----------------------------------------------------------

    def _finish(
        self,
        point: SweepPoint,
        envelope: Dict[str, Any],
        attempts: int,
        results: Dict[SweepPoint, PointResult],
    ) -> None:
        status = envelope.get("status", "error")
        result = PointResult(
            point=point,
            status=status,
            payload=envelope.get("payload"),
            cached=False,
            wall_time=float(envelope.get("wall_time", 0.0)),
            attempts=attempts,
            error=envelope.get("error"),
            divergence=envelope.get("divergence"),
        )
        if result.ok and self.cache is not None:
            try:
                self.cache.put(
                    point_key(point), point, result.payload,
                    meta={"wall_time": result.wall_time},
                )
            except OSError as exc:
                # A full/read-only/vanished cache directory must not
                # fail the sweep: the result is kept in memory and the
                # entry simply stays uncached.
                self.telemetry.warning(
                    "cache write failed; continuing uncached",
                    label=point.label, error=f"{type(exc).__name__}: {exc}",
                )
                if self._obs.enabled:
                    self._obs.inc("runner.cache_write_errors")
        results[point] = result
        obs_snapshot = envelope.get("obs")
        if obs_snapshot:
            self.obs.merge_snapshot(obs_snapshot)
        trace_doc = envelope.get("trace")
        if trace_doc:
            self.traces[point.label] = trace_doc
        ts_doc = envelope.get("timeseries")
        if ts_doc:
            self.timeseries[point.label] = ts_doc
        order_log = envelope.get("order_log")
        if order_log:
            self.order_logs[point.label] = order_log
        self._report(result, obs_snapshot=obs_snapshot)

    def _report(
        self,
        result: PointResult,
        obs_snapshot: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.telemetry.point_finished(
            label=result.point.label,
            key=point_key(result.point),
            status=result.status,
            cached=result.cached,
            wall_time=result.wall_time,
            sim_time=result.sim_time,
            attempts=result.attempts,
            obs=obs_snapshot,
        )
