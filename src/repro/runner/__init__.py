"""repro.runner — parallel sweep execution with content-addressed caching.

The figure harness expresses every experiment as a grid of
:class:`SweepPoint`s and hands the grid to a :class:`SweepRunner`,
which fans points out over a process pool, memoizes each result on
disk under a stable SHA-256 key, survives worker crashes and per-point
timeouts, and streams JSON-lines telemetry.  Determinism of the
underlying simulation makes the parallel path bit-identical to the
serial one and makes cached results valid forever.

See ``docs/runner.md`` for the cache-key anatomy, the worker model and
the failure semantics.
"""

from .cache import ResultCache, default_cache_dir, point_key
from .point import SweepPoint
from .retry import RetryPolicy
from .runner import PointResult, SweepError, SweepRunner, default_jobs
from .telemetry import SweepTelemetry, read_telemetry
from .worker import execute_point

__all__ = [
    "SweepPoint",
    "SweepRunner",
    "PointResult",
    "SweepError",
    "RetryPolicy",
    "ResultCache",
    "SweepTelemetry",
    "point_key",
    "default_cache_dir",
    "default_jobs",
    "execute_point",
    "read_telemetry",
]
