"""Structured sweep telemetry — JSON lines plus running counters.

One :class:`SweepTelemetry` instance accompanies one
:meth:`SweepRunner.run <repro.runner.runner.SweepRunner.run>` call.
Every event is a single JSON object on its own line, written to the
given stream (e.g. stderr for ``--progress``) and retained in
``.events`` for tests and programmatic inspection:

``{"event": "sweep_start", "seq": 1, "total": 25, "cached": 20,
  "jobs": 4}``
``{"event": "point", "seq": 2, "label": ..., "key": ..., "cache_key":
  ..., "status": "ok", "cached": false, "sim_time": 12.81,
  "wall_time": 0.42, "attempts": 1, "done": 3, "of": 25}``

``seq`` is a monotonic per-run sequence number (1-based, no gaps), so
consumers that aggregate, filter or interleave multiple streams can
re-establish emission order without relying on file position.  The
full event schema is documented in ``docs/runner.md``.

(``key`` is the 12-character short form for human eyes; ``cache_key``
is the full content hash, usable directly against the result cache.)
``{"event": "sweep_end", "total": 25, "ok": 25, "cached": 20,
  "failed": 0, "hit_rate": 0.8, "wall_time": 2.1}``

``hit_rate`` is cached-points over total points — the acceptance
telemetry for "a re-run with the same config completes with 100% cache
hits".

Durability: every event is written and flushed as one line (a consumer
tailing the stream never sees a partial record followed by more
output), and ``sweep_end`` additionally fsyncs file-backed streams so
the completed log survives a machine crash.  :func:`read_telemetry`
is the matching reader: it tolerates the one failure mode those
guarantees allow — a *final* line truncated mid-write — and raises on
anything else (mid-file corruption, ``seq`` gaps), which per-line
atomicity makes impossible without external tampering or data loss.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Any, Dict, Iterable, List, Optional, Union

__all__ = ["SweepTelemetry", "read_telemetry"]


def read_telemetry(
    source: Union[str, IO[str], Iterable[str]]
) -> List[Dict[str, Any]]:
    """Parse a telemetry JSON-lines log back into its event records.

    ``source`` is a path, a text stream, or an iterable of lines.  A
    truncated or corrupt *last* line — the only damage an interrupted
    writer can leave, since every event is written and flushed whole —
    is dropped silently.  A corrupt line with valid records after it,
    or a gap/regression in the per-run ``seq`` numbering, indicates
    real data loss and raises :class:`ValueError`.  ``seq`` restarting
    at 1 is allowed (several runs appended to one log).
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    elif hasattr(source, "read"):
        lines = source.read().splitlines()  # type: ignore[union-attr]
    else:
        lines = [line.rstrip("\n") for line in source]
    while lines and not lines[-1].strip():
        lines.pop()

    events: List[Dict[str, Any]] = []
    expected_seq: Optional[int] = None
    for i, line in enumerate(lines):
        if not line.strip():
            raise ValueError(
                f"telemetry log line {i + 1}: blank line inside the log"
            )
        try:
            record = json.loads(line)
        except ValueError:
            if i == len(lines) - 1:
                # The interrupted-writer tail; drop it.
                break
            raise ValueError(
                f"telemetry log line {i + 1}: corrupt record with valid "
                "records after it (per-line writes cannot produce this)"
            )
        if not isinstance(record, dict) or "seq" not in record:
            raise ValueError(
                f"telemetry log line {i + 1}: not a telemetry event record"
            )
        seq = record["seq"]
        if expected_seq is not None and seq != expected_seq and seq != 1:
            raise ValueError(
                f"telemetry log line {i + 1}: seq {seq} where "
                f"{expected_seq} was expected (missing events)"
            )
        expected_seq = seq + 1
        events.append(record)
    return events


class SweepTelemetry:
    """Counters + JSON-lines emitter for one sweep."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream
        self.events: List[Dict[str, Any]] = []
        self.total = 0
        self.done = 0
        self.cached = 0
        self.failed = 0
        self.retries = 0
        self.warnings = 0
        #: Corrupt cache entries discarded during this sweep (set by the
        #: runner from the cache backend's counter before ``sweep_end``).
        self.corrupt_discards = 0
        self._t0: Optional[float] = None
        self._seq = 0

    # -- emission -------------------------------------------------------------

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        self._seq += 1
        record = {"event": event, "seq": self._seq, **fields}
        self.events.append(record)
        if self.stream is not None:
            self.stream.write(json.dumps(record) + "\n")
            self.stream.flush()
        return record

    # -- lifecycle ------------------------------------------------------------

    def sweep_start(self, total: int, cached: int, jobs: int) -> None:
        self._t0 = time.perf_counter()
        self.total = total
        self.emit("sweep_start", total=total, cached=cached, jobs=jobs)

    def point_finished(
        self,
        label: str,
        key: str,
        status: str,
        cached: bool,
        wall_time: float,
        sim_time: Optional[float],
        attempts: int,
        obs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.done += 1
        if cached:
            self.cached += 1
        if status != "ok":
            self.failed += 1
        fields: Dict[str, Any] = dict(
            label=label,
            key=key[:12],
            cache_key=key,
            status=status,
            cached=cached,
            sim_time=sim_time,
            wall_time=round(wall_time, 6),
            attempts=attempts,
            done=self.done,
            of=self.total,
        )
        if obs is not None:
            # The point's simulator-metrics snapshot (collect_obs runs).
            fields["obs"] = obs
        self.emit("point", **fields)

    def retry_scheduled(
        self, label: str, key: str, attempt: int, delay: float
    ) -> None:
        """A crashed point was granted another attempt."""
        self.retries += 1
        self.emit(
            "retry",
            label=label,
            key=key[:12],
            attempt=attempt,
            delay=round(delay, 6),
        )

    def warning(self, message: str, **fields: Any) -> None:
        """A non-fatal degradation (e.g. a failed cache write)."""
        self.warnings += 1
        self.emit("warning", message=message, **fields)

    def sweep_end(self) -> Dict[str, Any]:
        wall = time.perf_counter() - self._t0 if self._t0 is not None else 0.0
        record = self.emit(
            "sweep_end",
            total=self.total,
            ok=self.done - self.failed,
            cached=self.cached,
            failed=self.failed,
            hit_rate=self.hit_rate,
            corrupt_discards=self.corrupt_discards,
            wall_time=round(wall, 6),
        )
        if self.stream is not None:
            # The closing record makes the log complete; push it to
            # stable storage so a crash after the sweep cannot lose it.
            # Streams without a real file descriptor (StringIO, some
            # pipes) simply skip the fsync.
            try:
                os.fsync(self.stream.fileno())
            except (AttributeError, OSError, ValueError):
                pass
        return record

    # -- summary --------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Cached points over total points (0.0 when the sweep is empty)."""
        return self.cached / self.total if self.total else 0.0

    def summary(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "ok": self.done - self.failed,
            "cached": self.cached,
            "failed": self.failed,
            "retries": self.retries,
            "warnings": self.warnings,
            "corrupt_discards": self.corrupt_discards,
            "hit_rate": self.hit_rate,
        }
