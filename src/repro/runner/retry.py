"""Retry policy for sweep points whose worker process dies.

A worker-process death (``BrokenProcessPool``: the simulated analog of
an OOM-kill or segfault) is the one failure mode :mod:`repro.runner`
retries — an *exception* inside a point is deterministic and would
fail identically on every attempt.  :class:`RetryPolicy` replaces the
historical hard-wired retry-once with a configurable budget plus
exponential backoff and deterministic jitter.

Determinism: the jitter for a given (point key, attempt) pair is a
pure hash — two runs of the same grid back off by identical amounts,
keeping sweep wall-times (and telemetry) reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and after what delay, a crashed point is re-submitted.

    Parameters
    ----------
    max_attempts:
        Total tries per point, first run included (``1`` = never
        retry).  The default ``2`` preserves the runner's historical
        retry-once behaviour.
    backoff:
        Real-seconds delay before the second attempt (``0`` retries
        immediately, as before).
    multiplier:
        Growth factor applied to ``backoff`` for each further attempt.
    jitter:
        Upper bound on an extra delay drawn deterministically from the
        point's cache key, de-synchronizing a wave of crashed points
        without sacrificing reproducibility.
    """

    max_attempts: int = 2
    backoff: float = 0.0
    multiplier: float = 2.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 (1 = never retry)")
        if self.backoff < 0.0 or self.jitter < 0.0:
            raise ValueError("backoff and jitter must be >= 0")
        if self.multiplier <= 0.0:
            raise ValueError("multiplier must be > 0")

    def should_retry(self, attempts: int) -> bool:
        """True if a point that has run ``attempts`` times may run again."""
        return attempts < self.max_attempts

    def delay(self, attempts: int, key: str = "") -> float:
        """Seconds to wait before attempt ``attempts + 1``.

        ``attempts`` is how many times the point has already run.  The
        jitter component hashes ``(key, attempts)`` so it is stable
        across runs and distinct across points.
        """
        if self.backoff <= 0.0 and self.jitter <= 0.0:
            return 0.0
        total = self.backoff * self.multiplier ** max(0, attempts - 1)
        if self.jitter > 0.0:
            blob = f"{key}:{attempts}".encode("utf-8")
            digest = hashlib.sha256(blob).digest()
            frac = int.from_bytes(digest[:8], "big") / 2.0 ** 64
            total += self.jitter * frac
        return total
