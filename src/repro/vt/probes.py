"""The snippets dynprof inserts: dynamic VT_begin / VT_end probes.

A :class:`VTProbeSnippet` is the instrumentation primitive of Figure 1:
a mini-trampoline body that calls straight into the Vampirtrace library.
It is *batchable*: the executor's leaf fast path can charge ``n`` firings
analytically and emit aggregated trace records, which is exact because
the snippet's behaviour per firing is a constant-cost library call.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..program.snippet import Snippet

if TYPE_CHECKING:  # pragma: no cover
    from ..program import FunctionInstance, ProgramContext

__all__ = ["VTProbeSnippet", "BEGIN", "END"]

BEGIN = "begin"
END = "end"


class VTProbeSnippet(Snippet):
    """``VT_begin(fid)`` / ``VT_end(fid)`` as dynamically inserted code."""

    #: call + constant argument, like CallFunc(name, [Const(fid)]).
    op_weight = 3

    def __init__(self, fi: "FunctionInstance", kind: str) -> None:
        if kind not in (BEGIN, END):
            raise ValueError(f"bad VT probe kind {kind!r}")
        self.fi = fi
        self.kind = kind

    def execute(self, pctx: "ProgramContext"):
        pctx.task.charge(pctx.spec.snippet_op_cost * self.op_weight)
        vt = pctx.image.vt
        if vt is not None:
            if self.kind == BEGIN:
                vt.probe_begin(pctx, self.fi)
            else:
                vt.probe_end(pctx, self.fi)
        return None
        yield  # pragma: no cover - generator marker

    # -- batching protocol (see BaseTrampoline.batch_cost) ------------------

    def batch_fire_cost(self, pctx: "ProgramContext") -> float:
        """Cost of one firing under the current VT configuration."""
        ops = pctx.spec.snippet_op_cost * self.op_weight
        vt = pctx.image.vt
        if vt is None:
            return ops
        begin_cost, end_cost, _records = vt.pair_info(pctx, self.fi)
        return ops + (begin_cost if self.kind == BEGIN else end_cost)

    def batch_apply(self, pctx: "ProgramContext", n: int, t_first: float, period: float) -> None:
        """Record side effects of ``n`` batched firings."""
        vt = pctx.image.vt
        if vt is not None:
            vt.batch_mark(pctx, self.fi, self.kind, n, t_first, period)

    def describe(self) -> str:
        name = self.fi.name
        return f"VT_{self.kind}({name!r})"
