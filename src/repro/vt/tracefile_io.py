"""On-disk trace-file formats: save/load for postmortem inspection.

The paper's model assumes "the collected data is dumped to a tracefile
at program termination to allow postmortem inspection".  This module
gives :class:`~repro.vt.buffer.TraceFile` two concrete on-disk forms.

The line-oriented text format (header, function table, one record per
line) round-trips exactly and is trivially greppable:

.. code-block:: text

    VGVTRACE 1 <app> <record_bytes>
    F <fid> <name>
    B <process> <thread>
    E <fid> <t>                 # enter
    L <fid> <t>                 # leave
    P <fid> <n> <t0> <dt> <dur> # batch pair
    M <kind> <peer> <tag> <size> <t>
    C <op> <comm_size> <t0> <t1>
    K <name> <t0> <t1>          # marker

The *compact* binary format (``.vgvz``, :mod:`repro.compact`) applies
streaming repeat suppression and delta-encoded timestamps; it also
round-trips exactly (:func:`save_trace_compact` /
:func:`load_trace_compact` are the streaming writer/reader pair) while
costing a small fraction of the analytic model's
``records x record_bytes`` — see ``docs/compaction.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .buffer import ThreadTraceBuffer, TraceFile
from .records import (
    BatchPairRecord,
    CollectiveRecord,
    EnterRecord,
    LeaveRecord,
    MarkerRecord,
    MsgRecord,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..compact import CompactionStats

__all__ = ["save_trace", "load_trace", "save_trace_compact",
           "load_trace_compact"]

_MAGIC = "VGVTRACE"
_VERSION = 1


def _quote(name: str) -> str:
    return name.replace("\\", "\\\\").replace(" ", "\\s")


def _unquote(token: str) -> str:
    return token.replace("\\s", " ").replace("\\\\", "\\")


def save_trace(trace: TraceFile, path: str) -> int:
    """Write ``trace`` to ``path``; returns the number of lines written."""
    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"{_MAGIC} {_VERSION} {_quote(trace.app_name)} {trace.record_bytes}\n")
        lines += 1
        for fid, name in sorted(trace.func_names.items()):
            fh.write(f"F {fid} {_quote(name)}\n")
            lines += 1
        for (process, thread), buf in sorted(trace.buffers.items()):
            fh.write(f"B {process} {thread}\n")
            lines += 1
            for rec in buf.records:
                fh.write(_record_line(rec))
                lines += 1
    return lines


def _record_line(rec) -> str:
    if isinstance(rec, EnterRecord):
        return f"E {rec.fid} {rec.t!r}\n"
    if isinstance(rec, LeaveRecord):
        return f"L {rec.fid} {rec.t!r}\n"
    if isinstance(rec, BatchPairRecord):
        return f"P {rec.fid} {rec.n} {rec.t_first!r} {rec.period!r} {rec.duration!r}\n"
    if isinstance(rec, MsgRecord):
        return f"M {rec.kind} {rec.peer} {rec.tag} {rec.size} {rec.t!r}\n"
    if isinstance(rec, CollectiveRecord):
        return f"C {_quote(rec.op)} {rec.comm_size} {rec.t_start!r} {rec.t_end!r}\n"
    if isinstance(rec, MarkerRecord):
        return f"K {_quote(rec.name)} {rec.t_start!r} {rec.t_end!r}\n"
    raise TypeError(f"unknown record type {type(rec).__name__}")


def load_trace(path: str) -> TraceFile:
    """Read a trace file written by :func:`save_trace`."""
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline().split()
        if len(header) != 4 or header[0] != _MAGIC:
            raise ValueError(f"{path}: not a {_MAGIC} file")
        if int(header[1]) != _VERSION:
            raise ValueError(f"{path}: unsupported version {header[1]}")
        trace = TraceFile(_unquote(header[2]), record_bytes=int(header[3]))
        buf: ThreadTraceBuffer | None = None
        for line_no, raw in enumerate(fh, start=2):
            parts = raw.split()
            if not parts:
                continue
            kind = parts[0]
            try:
                if kind == "F":
                    trace.register_function(int(parts[1]), _unquote(parts[2]))
                elif kind == "B":
                    buf = ThreadTraceBuffer(int(parts[1]), int(parts[2]))
                    trace.add_buffer(buf)
                elif buf is None:
                    raise ValueError("record before any buffer header")
                elif kind == "E":
                    buf.enter(int(parts[1]), float(parts[2]))
                elif kind == "L":
                    buf.leave(int(parts[1]), float(parts[2]))
                elif kind == "P":
                    buf.batch_pair(int(parts[1]), int(parts[2]), float(parts[3]),
                                   float(parts[4]), float(parts[5]))
                elif kind == "M":
                    buf.message(parts[1], int(parts[2]), int(parts[3]),
                                int(parts[4]), float(parts[5]))
                elif kind == "C":
                    buf.collective(_unquote(parts[1]), int(parts[2]),
                                   float(parts[3]), float(parts[4]))
                elif kind == "K":
                    buf.marker(_unquote(parts[1]), float(parts[2]), float(parts[3]))
                else:
                    raise ValueError(f"unknown record tag {kind!r}")
            except (IndexError, ValueError) as e:
                raise ValueError(f"{path}:{line_no}: {e}") from None
    return trace


def save_trace_compact(trace: TraceFile, path: str,
                       suppress: bool = True) -> "CompactionStats":
    """Write ``trace`` to ``path`` in the compact VGVZ binary format.

    Streams buffer by buffer through the repeat suppressor (``suppress=
    False`` disables folding but keeps the delta/varint framing) and
    returns the :class:`~repro.compact.CompactionStats` accounting —
    raw records, compact bytes, and the ratio against the analytic
    ``records x record_bytes`` volume model.
    """
    from ..compact import compress_trace

    with open(path, "wb") as fh:
        return compress_trace(trace, fh, suppress=suppress)


def load_trace_compact(path: str) -> TraceFile:
    """Read a VGVZ file written by :func:`save_trace_compact`.

    The decode is record-streaming and verifies the END trailer's
    object/record counts, so truncation raises instead of silently
    shortening the trace.
    """
    from ..compact import CompactReader

    return CompactReader.from_file(path).read_trace()
