"""The MPI wrapper (profiling) interface.

The real Vampirtrace interposes on MPI through the PMPI wrapper layer:
every MPI call first runs VT bookkeeping, then the real operation.  Here
the simulated MPI runtime calls these hooks; VT uses them to (a) log
message/collective records and (b) *initialise itself inside MPI_Init* —
the constraint that forces dynprof to defer all instrumentation until
MPI_Init completes (Section 3.4, Figure 6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .buffer import TraceFile
from .state import VTProcessState

if TYPE_CHECKING:  # pragma: no cover
    from ..program import ProgramContext

__all__ = ["VTMpiWrapper"]


class VTMpiWrapper:
    """Per-process VT hooks installed into the MPI runtime."""

    def __init__(self, state: VTProcessState) -> None:
        self.state = state

    # -- lifecycle ----------------------------------------------------------

    def on_init_complete(self, pctx: "ProgramContext") -> None:
        """Called at the end of MPI_Init: VT sets up its data structures.

        It is unsafe to call any VT function before this hook has run on
        every process.
        """
        self.state.initialize(pctx.task)

    def on_finalize(self, pctx: "ProgramContext", trace: Optional[TraceFile]) -> None:
        """Called in MPI_Finalize: flush trace buffers to the trace file."""
        if trace is not None:
            self.state.flush_to(trace)

    # -- events --------------------------------------------------------------

    def on_send(self, pctx: "ProgramContext", dest: int, tag: int, size: int) -> None:
        self.state.log_message(pctx, "send", dest, tag, size)

    def on_recv(self, pctx: "ProgramContext", source: int, tag: int, size: int) -> None:
        self.state.log_message(pctx, "recv", source, tag, size)

    def on_collective(self, pctx: "ProgramContext", op: str, comm_size: int, t_start: float) -> None:
        self.state.log_collective(pctx, op, comm_size, t_start)
