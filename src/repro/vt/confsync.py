"""VT_confsync — the dynamic-control synchronisation API (Section 5).

``vt_confsync`` is called collectively by every MPI rank at a *safe
point* (no messages in flight).  Rank 0 runs ``configuration_break`` —
a no-op a monitoring tool can hook to halt the application and hand a
new configuration over — then the (possibly unchanged) configuration is
broadcast, each rank rebuilds its deactivation table if needed, optional
runtime statistics are gathered and written, and a barrier closes the
epoch.

The three experiments of Figure 8 are exactly:

1. confsync with no configuration change (broadcast of "no change");
2. confsync applying a change (broadcast + table rebuild);
3. confsync with statistics generation (aggregate + gather + write).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

from ..obs import get as _obs_get
from ..obs.trace import get as _trace_get
from .config import VTConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..program import ProgramContext

__all__ = ["vt_confsync", "configuration_break"]


def configuration_break(pctx: "ProgramContext") -> Generator:
    """The no-op breakpoint anchor inside configuration_sync (Figure 2).

    When a monitoring tool has installed a break hook on the VT state,
    the application halts here until the tool resumes it; the hook may
    return a new :class:`VTConfig`.  Without a tool attached it returns
    immediately.
    """
    vt = pctx.image.vt
    if vt is None or vt.break_hook is None:
        return None
    result = vt.break_hook(pctx)
    if hasattr(result, "send"):
        result = yield from result
    return result


def vt_confsync(pctx: "ProgramContext", write_stats: Optional[bool] = None) -> Generator:
    """One collective configuration-sync epoch.  Returns the new config
    applied on this rank, or None when nothing changed.

    ``write_stats`` overrides the config's STATS flag (used by the
    Figure 8(b) experiment harness).
    """
    vt = pctx.image.vt
    rank = pctx.mpi
    if vt is None:
        raise RuntimeError("vt_confsync called without a VT library attached")
    if rank is None:
        raise RuntimeError("vt_confsync called outside an MPI program")
    task = pctx.task
    tracer = _trace_get()
    t_enter = task.now

    # Entering the sync point: epoch check bookkeeping, plus the config
    # fabric's per-dissemination-stage cost (O(log P)).
    stages = max(1, (rank.size - 1).bit_length())
    task.charge(vt.spec.confsync_base_cost + stages * vt.spec.confsync_stage_cost)

    # Rank 0 visits the breakpoint; a monitoring tool may inject a config.
    new_config: Optional[VTConfig] = None
    if rank.rank == 0:
        new_config = yield from configuration_break(pctx)

    # Disseminate: either the serialized new config or a "no change" token.
    nbytes = new_config.payload_bytes() if new_config is not None else 8
    received = yield from rank.comm.bcast(new_config, root=0, size=nbytes)

    applied: Optional[VTConfig] = None
    if received is not None:
        vt.apply_config(received, task=task)
        applied = received

    do_stats = vt.config.stats if write_stats is None else write_stats
    if do_stats:
        yield from _write_statistics(pctx)

    # Close the epoch: no rank proceeds until all have the new table.
    yield from rank.comm.barrier()
    obs = _obs_get()
    if obs.enabled:
        obs.inc("vt.confsync_epochs")
        if do_stats:
            obs.inc("vt.confsync_stats_writes")
    if tracer.enabled:
        # One span per rank covering the whole epoch; cross-rank
        # causality (the config broadcast, the closing barrier) is
        # carried by the transport-level flow edges underneath.
        tracer.complete(
            rank.rank, 0, "VT_confsync", "vt.confsync", t_enter, task.now,
            args={"epoch": vt.epoch, "changed": applied is not None,
                  "stats": bool(do_stats)},
        )
    return applied


def _write_statistics(pctx: "ProgramContext") -> Generator:
    """Runtime statistics generation (Figure 8(b) / experiment 3).

    Every rank aggregates its per-function statistics, the payloads are
    gathered to rank 0, and rank 0 appends them to the statistics file on
    the shared filesystem.
    """
    vt = pctx.image.vt
    rank = pctx.mpi
    task = pctx.task
    spec = vt.spec

    vt.charge_stats_generation(task)
    payload = vt.stats_payload_bytes()
    task.charge(spec.fs_sync_cost)
    sizes = yield from rank.comm.gather(payload, root=0, size=payload)
    if rank.rank == 0:
        total = sum(sizes)
        task.charge(spec.fs_open_cost + total / spec.fs_write_bandwidth)
        yield from task.flush()
