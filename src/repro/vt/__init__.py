"""repro.vt — the Vampirtrace/Guidetrace instrumentation library analog.

Implements the complete-profiling trace library of VGV: per-thread trace
buffers and records, the configuration file with its deactivation table
(Full-Off/Subset policies), the per-call cost model, dynamic VT probe
snippets, the MPI wrapper interface, runtime statistics, and
``VT_confsync`` — the dynamic-control synchronisation API of Section 5.
"""

from .buffer import DEFAULT_RECORD_BYTES, ThreadTraceBuffer, TraceFile
from .config import VTConfig, VTConfigError
from .confsync import vt_confsync
from .mpiwrap import VTMpiWrapper
from .probes import BEGIN, END, VTProbeSnippet
from .records import (
    BatchPairRecord,
    CollectiveRecord,
    EnterRecord,
    LeaveRecord,
    MarkerRecord,
    MsgRecord,
    TraceRecord,
)
from .state import (
    FunctionRegistry,
    FunctionStats,
    VTProcessState,
    compact_accounting,
    set_compact_accounting,
)
from .tracefile_io import (
    load_trace,
    load_trace_compact,
    save_trace,
    save_trace_compact,
)

__all__ = [
    "VTConfig",
    "VTConfigError",
    "VTProcessState",
    "FunctionRegistry",
    "FunctionStats",
    "ThreadTraceBuffer",
    "TraceFile",
    "VTProbeSnippet",
    "BEGIN",
    "END",
    "VTMpiWrapper",
    "vt_confsync",
    "save_trace",
    "load_trace",
    "save_trace_compact",
    "load_trace_compact",
    "DEFAULT_RECORD_BYTES",
    "set_compact_accounting",
    "compact_accounting",
    "TraceRecord",
    "EnterRecord",
    "LeaveRecord",
    "BatchPairRecord",
    "MsgRecord",
    "CollectiveRecord",
    "MarkerRecord",
]
