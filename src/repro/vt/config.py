"""The Vampirtrace configuration file.

At VT initialisation the configuration file is read and a table of
deactivated symbols is built; every ``VT_begin``/``VT_end`` does a lookup
into this table (Section 4.2 of the paper).  The format here mirrors the
spirit of the real VT config file:

.. code-block:: text

    # comments and blank lines are ignored
    DEFAULT ON              # implicit state of unmentioned symbols
    SYMBOL * OFF            # glob directives, later ones win
    SYMBOL hypre_* ON
    MPI-TRACE ON            # log MPI message events?
    STATS OFF               # write runtime statistics at confsync?

Directives are case-insensitive; symbol globs are case-sensitive.
"""

from __future__ import annotations

import fnmatch
from typing import Iterable, List, Set, Tuple

__all__ = ["VTConfig", "VTConfigError"]


class VTConfigError(ValueError):
    """Malformed configuration text."""


def _parse_on_off(token: str, line_no: int) -> bool:
    t = token.upper()
    if t == "ON":
        return True
    if t == "OFF":
        return False
    raise VTConfigError(f"line {line_no}: expected ON or OFF, got {token!r}")


class VTConfig:
    """Parsed VT configuration: symbol activation rules + library flags."""

    def __init__(
        self,
        rules: Iterable[Tuple[str, bool]] = (),
        default_on: bool = True,
        mpi_trace: bool = True,
        stats: bool = False,
    ) -> None:
        #: Ordered (glob, active) rules; the *last* matching rule wins.
        self.rules: List[Tuple[str, bool]] = list(rules)
        self.default_on = default_on
        self.mpi_trace = mpi_trace
        self.stats = stats

    # -- parsing --------------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "VTConfig":
        cfg = cls()
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            keyword = parts[0].upper()
            if keyword == "SYMBOL":
                if len(parts) != 3:
                    raise VTConfigError(
                        f"line {line_no}: SYMBOL needs <glob> <ON|OFF>"
                    )
                cfg.rules.append((parts[1], _parse_on_off(parts[2], line_no)))
            elif keyword == "DEFAULT":
                if len(parts) != 2:
                    raise VTConfigError(f"line {line_no}: DEFAULT needs ON|OFF")
                cfg.default_on = _parse_on_off(parts[1], line_no)
            elif keyword == "MPI-TRACE":
                if len(parts) != 2:
                    raise VTConfigError(f"line {line_no}: MPI-TRACE needs ON|OFF")
                cfg.mpi_trace = _parse_on_off(parts[1], line_no)
            elif keyword == "STATS":
                if len(parts) != 2:
                    raise VTConfigError(f"line {line_no}: STATS needs ON|OFF")
                cfg.stats = _parse_on_off(parts[1], line_no)
            else:
                raise VTConfigError(f"line {line_no}: unknown directive {parts[0]!r}")
        return cfg

    # -- convenience constructors (the paper's Table 3 policies) ----------------

    @classmethod
    def all_on(cls) -> "VTConfig":
        """Full: every statically inserted probe active."""
        return cls()

    @classmethod
    def all_off(cls) -> "VTConfig":
        """Full-Off: everything statically instrumented but deactivated."""
        return cls(rules=[("*", False)])

    @classmethod
    def subset(cls, active: Iterable[str]) -> "VTConfig":
        """Subset: deactivate all, then re-activate the important functions."""
        rules: List[Tuple[str, bool]] = [("*", False)]
        rules.extend((name, True) for name in active)
        return cls(rules=rules)

    # -- evaluation ---------------------------------------------------------------

    def is_active(self, name: str) -> bool:
        """Resolve one symbol against the rules (last match wins)."""
        state = self.default_on
        for glob, active in self.rules:
            if fnmatch.fnmatchcase(name, glob):
                state = active
        return state

    def deactivation_table(self, names: Iterable[str]) -> Set[str]:
        """The table VT builds at init: the set of *deactivated* symbols."""
        return {n for n in names if not self.is_active(n)}

    # -- serialisation (what confsync broadcasts) -----------------------------------

    def dump(self) -> str:
        lines = [f"DEFAULT {'ON' if self.default_on else 'OFF'}"]
        lines.extend(
            f"SYMBOL {glob} {'ON' if active else 'OFF'}" for glob, active in self.rules
        )
        lines.append(f"MPI-TRACE {'ON' if self.mpi_trace else 'OFF'}")
        lines.append(f"STATS {'ON' if self.stats else 'OFF'}")
        return "\n".join(lines) + "\n"

    def payload_bytes(self) -> int:
        """Size of the serialised config (what confsync puts on the wire)."""
        return len(self.dump().encode("utf-8"))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VTConfig):
            return NotImplemented
        return (
            self.rules == other.rules
            and self.default_on == other.default_on
            and self.mpi_trace == other.mpi_trace
            and self.stats == other.stats
        )

    def __repr__(self) -> str:
        return (
            f"<VTConfig rules={len(self.rules)} default="
            f"{'on' if self.default_on else 'off'} mpi={self.mpi_trace} "
            f"stats={self.stats}>"
        )
