"""Trace record types written by the Vampirtrace analog.

A trace is a sequence of time-stamped records per (process, thread).
``BatchPairRecord`` is the aggregated form emitted by the executor's
leaf-call batching: it stands for ``n`` consecutive (enter, leave) pairs
and counts as ``2n`` raw records for trace-size accounting — the paper's
original motivation is exactly that these raw records accumulate at
megabytes per second per processor.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "TraceRecord",
    "EnterRecord",
    "LeaveRecord",
    "BatchPairRecord",
    "MsgRecord",
    "CollectiveRecord",
    "MarkerRecord",
]


class TraceRecord:
    """Base class; subclasses are lightweight slotted value objects."""

    __slots__ = ()

    #: Number of raw on-disk records this object stands for.
    def record_count(self) -> int:
        return 1

    @property
    def time(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError


class EnterRecord(TraceRecord):
    """Function entry (VT_begin)."""

    __slots__ = ("fid", "t")

    def __init__(self, fid: int, t: float) -> None:
        self.fid = fid
        self.t = t

    @property
    def time(self) -> float:
        return self.t

    def __repr__(self) -> str:
        return f"Enter(fid={self.fid}, t={self.t:.6f})"


class LeaveRecord(TraceRecord):
    """Function exit (VT_end)."""

    __slots__ = ("fid", "t")

    def __init__(self, fid: int, t: float) -> None:
        self.fid = fid
        self.t = t

    @property
    def time(self) -> float:
        return self.t

    def __repr__(self) -> str:
        return f"Leave(fid={self.fid}, t={self.t:.6f})"


class BatchPairRecord(TraceRecord):
    """``n`` consecutive (enter, leave) pairs of one function.

    Pair ``k`` (0-based) entered at ``t_first + k * period`` and left
    ``duration`` later.
    """

    __slots__ = ("fid", "n", "t_first", "period", "duration")

    def __init__(self, fid: int, n: int, t_first: float, period: float, duration: float) -> None:
        self.fid = fid
        self.n = n
        self.t_first = t_first
        self.period = period
        self.duration = duration

    def record_count(self) -> int:
        return 2 * self.n

    @property
    def time(self) -> float:
        return self.t_first

    @property
    def t_last_leave(self) -> float:
        return self.t_first + (self.n - 1) * self.period + self.duration

    def __repr__(self) -> str:
        return (
            f"BatchPair(fid={self.fid}, n={self.n}, t={self.t_first:.6f}, "
            f"dt={self.duration:.2e})"
        )


class MsgRecord(TraceRecord):
    """A point-to-point MPI message event (send or receive side)."""

    __slots__ = ("kind", "peer", "tag", "size", "t")

    def __init__(self, kind: str, peer: int, tag: int, size: int, t: float) -> None:
        if kind not in ("send", "recv"):
            raise ValueError(f"bad message record kind {kind!r}")
        self.kind = kind
        self.peer = peer
        self.tag = tag
        self.size = size
        self.t = t

    @property
    def time(self) -> float:
        return self.t

    def __repr__(self) -> str:
        return f"Msg({self.kind} peer={self.peer} tag={self.tag} {self.size}B t={self.t:.6f})"


class CollectiveRecord(TraceRecord):
    """An MPI collective operation interval on one rank."""

    __slots__ = ("op", "comm_size", "t_start", "t_end")

    def __init__(self, op: str, comm_size: int, t_start: float, t_end: float) -> None:
        self.op = op
        self.comm_size = comm_size
        self.t_start = t_start
        self.t_end = t_end

    @property
    def time(self) -> float:
        return self.t_start

    def __repr__(self) -> str:
        return f"Coll({self.op} t={self.t_start:.6f}..{self.t_end:.6f})"


class MarkerRecord(TraceRecord):
    """A named marker interval (e.g. suspension / bootstrap inactivity)."""

    __slots__ = ("name", "t_start", "t_end")

    def __init__(self, name: str, t_start: float, t_end: Optional[float] = None) -> None:
        self.name = name
        self.t_start = t_start
        self.t_end = t_start if t_end is None else t_end

    @property
    def time(self) -> float:
        return self.t_start

    def __repr__(self) -> str:
        return f"Marker({self.name} t={self.t_start:.6f}..{self.t_end:.6f})"
