"""Per-thread trace buffers and the postmortem trace file.

During the run every (process, thread) appends records to its own
:class:`ThreadTraceBuffer` (no cross-thread synchronisation, as in the
real Vampirtrace).  At program termination the buffers are flushed into a
:class:`TraceFile`, the postmortem artifact the VGV GUI (here,
:mod:`repro.analysis`) reads.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .records import (
    BatchPairRecord,
    CollectiveRecord,
    EnterRecord,
    LeaveRecord,
    MarkerRecord,
    MsgRecord,
    TraceRecord,
)

__all__ = ["ThreadTraceBuffer", "TraceFile", "DEFAULT_RECORD_BYTES"]

#: Bytes one raw on-disk record costs in the analytic volume model
#: (the :class:`TraceFile` default; machine specs carry the same 24).
DEFAULT_RECORD_BYTES = 24


class ThreadTraceBuffer:
    """Append-only record buffer of one thread of one process."""

    __slots__ = ("process", "thread", "records", "_raw_count",
                 "_compact_cache")

    def __init__(self, process: int, thread: int) -> None:
        self.process = process
        self.thread = thread
        self.records: List[TraceRecord] = []
        self._raw_count = 0
        #: (record-object count, compact bytes) memo for compact_bytes.
        self._compact_cache: Optional[Tuple[int, int]] = None

    # Hot-path append helpers (avoid isinstance dispatch later).

    def enter(self, fid: int, t: float) -> None:
        self.records.append(EnterRecord(fid, t))
        self._raw_count += 1

    def leave(self, fid: int, t: float) -> None:
        self.records.append(LeaveRecord(fid, t))
        self._raw_count += 1

    def batch_pair(self, fid: int, n: int, t_first: float, period: float, duration: float) -> None:
        self.records.append(BatchPairRecord(fid, n, t_first, period, duration))
        self._raw_count += 2 * n

    def message(self, kind: str, peer: int, tag: int, size: int, t: float) -> None:
        self.records.append(MsgRecord(kind, peer, tag, size, t))
        self._raw_count += 1

    def collective(self, op: str, comm_size: int, t_start: float, t_end: float) -> None:
        self.records.append(CollectiveRecord(op, comm_size, t_start, t_end))
        self._raw_count += 1

    def marker(self, name: str, t_start: float, t_end: Optional[float] = None) -> None:
        self.records.append(MarkerRecord(name, t_start, t_end))
        self._raw_count += 1

    @property
    def raw_record_count(self) -> int:
        """Number of raw (on-disk) records this buffer stands for."""
        return self._raw_count

    @property
    def raw_bytes(self) -> int:
        """Analytic on-disk size: ``raw_record_count x record bytes``."""
        return self._raw_count * DEFAULT_RECORD_BYTES

    @property
    def compact_bytes(self) -> int:
        """Bytes this buffer's records cost in the compact VGVZ codec.

        Computed on demand by running the streaming compactor over the
        records (and memoized until the buffer grows), so the append
        hot path pays nothing; ``raw_bytes / compact_bytes`` is the
        per-rank compression ratio the ``vt.trace_*_bytes`` observation
        counters mirror.
        """
        cache = self._compact_cache
        if cache is not None and cache[0] == len(self.records):
            return cache[1]
        from ..compact import measure_compact_bytes

        size = measure_compact_bytes(self.records)
        self._compact_cache = (len(self.records), size)
        return size

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (
            f"<ThreadTraceBuffer p{self.process}t{self.thread} "
            f"{len(self.records)} objs / {self._raw_count} raw>"
        )


class TraceFile:
    """The merged postmortem trace of one application run."""

    def __init__(self, app_name: str, record_bytes: int = 24) -> None:
        self.app_name = app_name
        self.record_bytes = record_bytes
        #: (process, thread) -> buffer
        self.buffers: Dict[Tuple[int, int], ThreadTraceBuffer] = {}
        #: fid -> function name, merged across processes (name-keyed ids
        #: are process-local; the writer remaps on flush).
        self.func_names: Dict[int, str] = {}

    def add_buffer(self, buffer: ThreadTraceBuffer) -> None:
        key = (buffer.process, buffer.thread)
        if key in self.buffers:
            raise ValueError(f"duplicate trace buffer for {key}")
        self.buffers[key] = buffer

    def register_function(self, fid: int, name: str) -> None:
        existing = self.func_names.get(fid)
        if existing is not None and existing != name:
            raise ValueError(
                f"fid {fid} maps to both {existing!r} and {name!r}"
            )
        self.func_names[fid] = name

    # -- accounting -------------------------------------------------------------

    @property
    def raw_record_count(self) -> int:
        return sum(b.raw_record_count for b in self.buffers.values())

    @property
    def size_bytes(self) -> int:
        """Estimated on-disk size (the quantity the paper wants to shrink)."""
        return self.raw_record_count * self.record_bytes

    @property
    def n_threads(self) -> int:
        return len(self.buffers)

    @property
    def n_processes(self) -> int:
        return len({p for p, _t in self.buffers})

    def records_of(self, process: int, thread: int = 0) -> List[TraceRecord]:
        return self.buffers[(process, thread)].records

    def all_records(self) -> Iterable[Tuple[int, int, TraceRecord]]:
        """Every record with its (process, thread), unspecified order
        across threads (records within a thread stay in time order)."""
        for (p, t), buf in self.buffers.items():
            for rec in buf.records:
                yield p, t, rec

    def function_name(self, fid: int) -> str:
        return self.func_names.get(fid, f"fid#{fid}")

    def __repr__(self) -> str:
        return (
            f"<TraceFile {self.app_name}: {self.n_processes} procs, "
            f"{self.raw_record_count} raw records, {self.size_bytes} bytes>"
        )
