"""Per-process Vampirtrace library state.

One :class:`VTProcessState` is linked into each simulated process (MPI
rank, or the single process of an OpenMP run).  It owns the function
registry, the deactivation table built from the configuration file, the
per-thread trace buffers, and the running statistics.  The executor and
the dynamic probe snippets call into it on every probe firing; the cost
constants it charges are what create the Full / Full-Off / Subset /
Dynamic separation of Figure 7:

* **active probe** — ``vt_active_event_cost`` per event, plus a record;
* **deactivated probe** — ``vt_lookup_cost`` per event, no record
  ("a majority of the overhead due to the call is avoided", §4.2);
* **uninstrumented function** — the state is never consulted: zero cost.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Set, Tuple

from ..cluster import MachineSpec, Task
from ..obs import get as _obs_get
from ..obs.trace import get as _trace_get
from ..simt import Environment
from .buffer import ThreadTraceBuffer, TraceFile
from .config import VTConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..program import FunctionInstance, ProcessImage, ProgramContext

__all__ = [
    "FunctionRegistry",
    "VTProcessState",
    "FunctionStats",
    "set_compact_accounting",
    "compact_accounting",
]

#: When True (and an obs registry is live), ``flush_to`` also encodes
#: every buffer through the VGVZ codec and mirrors the result as the
#: ``vt.trace_compact_bytes`` counter.  The encode is a real O(records)
#: pass over the whole postmortem trace, far above the registry's
#: few-dict-ops-per-site budget, so it is opt-in — the cheap analytic
#: ``vt.trace_raw_bytes`` counter is mirrored unconditionally.
_COMPACT_ACCOUNTING = False


def set_compact_accounting(enabled: bool) -> bool:
    """Turn flush-time VGVZ size mirroring on or off; returns the previous state."""
    global _COMPACT_ACCOUNTING
    previous = _COMPACT_ACCOUNTING
    _COMPACT_ACCOUNTING = bool(enabled)
    return previous


@contextmanager
def compact_accounting() -> Iterator[None]:
    """Run a block with ``vt.trace_compact_bytes`` mirroring enabled."""
    previous = set_compact_accounting(True)
    try:
        yield
    finally:
        set_compact_accounting(previous)


class FunctionRegistry:
    """Job-wide function-name <-> id registry.

    The real VT assigns ids per process at first registration; using a
    registry shared by all ranks of one run keeps ids consistent for the
    postmortem merge without changing any cost behaviour (registration
    is still charged per process via ``vt_funcdef_cost``).
    """

    def __init__(self) -> None:
        self._name_to_fid: Dict[str, int] = {}
        self._fid_to_name: Dict[int, str] = {}
        self._next = 1

    def define(self, name: str) -> int:
        fid = self._name_to_fid.get(name)
        if fid is None:
            fid = self._next
            self._next += 1
            self._name_to_fid[name] = fid
            self._fid_to_name[fid] = name
        return fid

    def name_of(self, fid: int) -> str:
        return self._fid_to_name[fid]

    def lookup(self, name: str) -> Optional[int]:
        return self._name_to_fid.get(name)

    def items(self) -> List[Tuple[int, str]]:
        return sorted(self._fid_to_name.items())

    def __len__(self) -> int:
        return len(self._name_to_fid)


class FunctionStats:
    """Running statistics of one function on one process."""

    __slots__ = ("count", "inclusive_time")

    def __init__(self) -> None:
        self.count = 0
        self.inclusive_time = 0.0

    def __repr__(self) -> str:
        return f"<FunctionStats n={self.count} t={self.inclusive_time:.6f}>"


class VTProcessState:
    """The instrumentation library linked into one process."""

    def __init__(
        self,
        env: Environment,
        spec: MachineSpec,
        image: "ProcessImage",
        process_index: int,
        registry: Optional[FunctionRegistry] = None,
        config: Optional[VTConfig] = None,
    ) -> None:
        self.env = env
        self.spec = spec
        self.image = image
        self.process_index = process_index
        self.registry = registry if registry is not None else FunctionRegistry()
        self.config = config if config is not None else VTConfig.all_on()
        self.initialized = False
        #: Simulated time VT_init completed (None until then).
        self._init_time: Optional[float] = None
        #: Deactivated function ids (the paper's lookup table).
        self._off: Set[int] = set()
        #: Per-task trace buffers and shadow call stacks.
        self._buffers: Dict[Task, ThreadTraceBuffer] = {}
        self._stacks: Dict[Task, List[Tuple[int, float]]] = {}
        #: Pending batched begin marks awaiting their end marks.
        self._pending_batch: Dict[Tuple[Task, int], Tuple[int, float, float]] = {}
        self.stats: Dict[int, FunctionStats] = {}
        #: Config epoch, bumped on every applied change (confsync).
        self.epoch = 0
        #: Records accumulated since the last mid-run buffer flush.
        self._unflushed_records = 0
        #: Number of processes concurrently writing traces (set by the
        #: job launcher); they share the trace filesystem's bandwidth.
        self.n_cotracers = 1
        #: Total time this process spent flushing trace buffers.
        self.flush_time_total = 0.0
        #: Optional fault hook (set by a FaultInjector): called with the
        #: writing task before each raw-record batch is accounted; True
        #: means the buffer write fails and the batch is lost.
        self.write_fault: Optional[Callable] = None
        #: Raw records lost to injected trace-buffer write failures.
        self.write_drops = 0
        #: Optional hook run by rank 0 inside VT_confsync — the
        #: configuration_break breakpoint a monitoring tool can grab.
        self.break_hook: Optional[Callable] = None
        # Cache cost constants as attributes (hot path).
        self._active_cost = spec.vt_active_event_cost
        self._lookup_cost = spec.vt_lookup_cost
        self._flush_threshold = spec.vt_flush_threshold_records
        self._obs = _obs_get()
        self._trace = _trace_get()

        image.vt = self
        # Expose the library to dynamically inserted snippets.
        image.register_runtime("VT_funcdef", self._rt_funcdef)
        image.register_runtime("VT_begin", self._rt_begin)
        image.register_runtime("VT_end", self._rt_end)

    # -- initialisation --------------------------------------------------------

    def initialize(self, task: Task) -> None:
        """VT_init: register static functions, build the deactivation table.

        In MPI applications this runs inside the MPI_Init wrapper; in
        OpenMP applications the Guide compiler plants VT_init at the top
        of main (Section 3.4).
        """
        if self.initialized:
            return
        n_registered = 0
        for fi in self.image.functions.values():
            if fi.symbol.static_instrumented:
                fi.fid = self.registry.define(fi.name)
                n_registered += 1
        task.charge(n_registered * self.spec.vt_funcdef_cost)
        self._rebuild_table()
        self.initialized = True
        self._init_time = task.now

    def _rebuild_table(self) -> None:
        self._off = {
            fi.fid
            for fi in self.image.functions.values()
            if fi.fid is not None and not self.config.is_active(fi.name)
        }

    def funcdef(self, task: Task, name: str) -> int:
        """VT_funcdef: register one function by name (dynamic path)."""
        task.charge(self.spec.vt_funcdef_cost)
        return self.funcdef_external(name)

    def funcdef_external(self, name: str) -> int:
        """Registration performed on behalf of a stopped target (the
        DPCL daemon charges the time to itself, not to the target)."""
        fid = self.registry.define(name)
        fi = self.image.functions.get(name)
        if fi is not None:
            fi.fid = fid
            if not self.config.is_active(name):
                self._off.add(fid)
        return fid

    # -- configuration ------------------------------------------------------------

    def apply_config(self, config: VTConfig, task: Optional[Task] = None) -> None:
        """Install a new configuration and rebuild the deactivation table."""
        self.config = config
        self._rebuild_table()
        self.epoch += 1
        if self._obs.enabled:
            self._obs.inc("vt.reconfigurations")
        if self._trace.enabled:
            self._trace.instant(
                self.process_index, 0, "vt.epoch", "vt.confsync",
                task.now if task is not None else self.env.now,
                args={"epoch": self.epoch},
            )
        if task is not None:
            task.charge(self.spec.confsync_apply_cost)

    def is_fid_active(self, fid: Optional[int]) -> bool:
        return fid is not None and self.initialized and fid not in self._off

    # -- trace-buffer flushing ------------------------------------------------------

    def _account_records(self, task: Task, k: int) -> None:
        """Track ``k`` new raw records; charge a shared-FS flush when the
        buffer threshold is crossed.  This mid-run I/O is the dominant
        perturbation of complete profiling at scale (the paper's 2 MB/s
        per processor growth estimate): concurrent writers divide the
        trace filesystem's bandwidth, so flush time scales with the
        number of tracing processes."""
        if self.write_fault is not None and self.write_fault(task):
            # The buffer write failed: the batch never reaches the trace
            # stream (and never contributes flush traffic).  The in-
            # memory profile (stats) is unaffected — only trace volume
            # is lost, which is how VT treats unwritable buffer pages.
            self.write_drops += k
            if self._obs.enabled:
                self._obs.inc("vt.write_drops", k)
            return
        self._unflushed_records += k
        if self._obs.enabled:
            self._obs.inc("vt.records", k)
        if self._trace.enabled:
            # Drop-immune raw-record count: the tracer-side input of the
            # trace-volume model (records x trace_record_bytes).
            self._trace.count("vt.records", k)
        if self._unflushed_records >= self._flush_threshold:
            self._flush_records(task)

    def _flush_records(self, task: Task) -> None:
        """Charge the shared-FS flush of every unflushed record."""
        n = self._unflushed_records
        self._unflushed_records = 0
        t0 = task.now
        dt = (
            n * self.spec.trace_record_bytes * self.n_cotracers
            / self.spec.trace_fs_bandwidth
        )
        task.charge(dt)
        self.flush_time_total += dt
        if self._obs.enabled:
            self._obs.inc("vt.flushes")
            self._obs.inc("vt.flush_bytes", n * self.spec.trace_record_bytes)
            self._obs.span("vt.flush", dt)
        if self._trace.enabled:
            buf = self._buffers.get(task)
            self._trace.complete(
                self.process_index, buf.thread if buf is not None else 0,
                "vt.flush", "vt.flush", t0, t0 + dt,
                args={"records": n,
                      "bytes": n * self.spec.trace_record_bytes},
            )

    # -- buffers -----------------------------------------------------------------

    def buffer_for(self, task: Task, thread_id: int = 0) -> ThreadTraceBuffer:
        buf = self._buffers.get(task)
        if buf is None:
            buf = ThreadTraceBuffer(self.process_index, thread_id)
            self._buffers[task] = buf
            self._stacks[task] = []
        return buf

    @property
    def buffers(self) -> List[ThreadTraceBuffer]:
        return list(self._buffers.values())

    # -- the probe hot path ---------------------------------------------------------

    def probe_begin(self, pctx: "ProgramContext", fi: "FunctionInstance") -> None:
        """VT_begin, from a static probe or a dynamic trampoline snippet."""
        fid = fi.fid
        task = pctx.task
        trace = self._trace
        if fid is None or not self.initialized or fid in self._off:
            task.charge(self._lookup_cost)
            if trace.enabled:
                trace.count("vt.probe_events")
                trace.count("vt.probe_time", self._lookup_cost)
            return
        task.charge(self._active_cost)
        # Inlined single-record fast path of _account_records: this and
        # probe_end are the two hottest calls in a profiled run.
        if self.write_fault is None:
            self._unflushed_records += 1
            if self._obs.enabled:
                self._obs.inc("vt.records")
            if trace.enabled:
                trace.count("vt.records")
            if self._unflushed_records >= self._flush_threshold:
                self._flush_records(task)
        else:
            self._account_records(task, 1)
        buf = self._buffers.get(task)
        if buf is None:
            buf = self.buffer_for(task, pctx.thread_id)
        t = task.now
        buf.enter(fid, t)
        self._stacks[task].append((fid, t))
        if trace.enabled:
            trace.count("vt.probe_events")
            trace.count("vt.probe_time", self._active_cost)
            if trace.fine:
                trace.begin(self.process_index, buf.thread,
                            self.registry.name_of(fid), "app", t)

    def probe_end(self, pctx: "ProgramContext", fi: "FunctionInstance") -> None:
        """VT_end, the matching exit event."""
        fid = fi.fid
        task = pctx.task
        trace = self._trace
        if fid is None or not self.initialized or fid in self._off:
            task.charge(self._lookup_cost)
            if trace.enabled:
                trace.count("vt.probe_events")
                trace.count("vt.probe_time", self._lookup_cost)
            return
        task.charge(self._active_cost)
        if self.write_fault is None:
            self._unflushed_records += 1
            if self._obs.enabled:
                self._obs.inc("vt.records")
            if trace.enabled:
                trace.count("vt.records")
            if self._unflushed_records >= self._flush_threshold:
                self._flush_records(task)
        else:
            self._account_records(task, 1)
        buf = self._buffers.get(task)
        if buf is None:
            buf = self.buffer_for(task, pctx.thread_id)
        t = task.now
        buf.leave(fid, t)
        if trace.enabled:
            trace.count("vt.probe_events")
            trace.count("vt.probe_time", self._active_cost)
            if trace.fine:
                trace.end(self.process_index, buf.thread, t)
        stack = self._stacks[task]
        # Pop the matching begin (tolerate asymmetric instrumentation).
        while stack:
            open_fid, t0 = stack.pop()
            if open_fid == fid:
                st = self.stats.get(fid)
                if st is None:
                    st = self.stats[fid] = FunctionStats()
                st.count += 1
                st.inclusive_time += t - t0
                break

    # Aliases used by the executor's static-probe path.
    static_begin = probe_begin
    static_end = probe_end

    # -- batching support (executor leaf fast path) ------------------------------------

    def pair_info(self, pctx: "ProgramContext", fi: "FunctionInstance") -> Tuple[float, float, bool]:
        """(begin_cost, end_cost, records?) for one probe pair right now."""
        if self.is_fid_active(fi.fid):
            return (self._active_cost, self._active_cost, True)
        return (self._lookup_cost, self._lookup_cost, False)

    def record_batch_pair(
        self,
        pctx: "ProgramContext",
        fi: "FunctionInstance",
        n: int,
        first_begin: float,
        period: float,
        duration: float,
    ) -> None:
        """Record ``n`` (enter, leave) pairs in aggregate + update stats."""
        fid = fi.fid
        assert fid is not None
        task = pctx.task
        self._account_records(task, 2 * n)
        buf = self._buffers.get(task)
        if buf is None:
            buf = self.buffer_for(task, pctx.thread_id)
        buf.batch_pair(fid, n, first_begin, period, duration)
        st = self.stats.get(fid)
        if st is None:
            st = self.stats[fid] = FunctionStats()
        st.count += n
        st.inclusive_time += n * duration
        trace = self._trace
        if trace.enabled:
            trace.count("vt.probe_events", 2 * n)
            trace.count("vt.probe_time", 2 * n * self._active_cost)
            if trace.fine:
                # One aggregate span stands for the whole batch; the ring
                # would otherwise drown in per-iteration pairs.
                trace.complete(
                    self.process_index, buf.thread,
                    f"{self.registry.name_of(fid)} x{n}", "app.batch",
                    first_begin,
                    first_begin + (n - 1) * period + duration,
                    args={"n": n},
                )

    def batch_mark(
        self,
        pctx: "ProgramContext",
        fi: "FunctionInstance",
        kind: str,
        n: int,
        t_first: float,
        period: float,
    ) -> None:
        """Pair batched dynamic begin/end marks into batch-pair records."""
        if not self.is_fid_active(fi.fid):
            return
        key = (pctx.task, fi.fid)
        if kind == "begin":
            self._pending_batch[key] = (n, t_first, period)
            return
        pending = self._pending_batch.pop(key, None)
        if pending is not None and pending[0] == n:
            _n, t_begin, per = pending
            self.record_batch_pair(pctx, fi, n, t_begin, per, t_first - t_begin)
        else:
            # Unpaired end marks: record as zero-duration pairs so counts
            # stay conservative rather than silently dropped.
            self.record_batch_pair(pctx, fi, n, t_first, period, 0.0)

    # -- message events (called by the MPI wrapper) ---------------------------------------

    def log_message(self, pctx: "ProgramContext", kind: str, peer: int, tag: int, size: int) -> None:
        if not self.initialized or not self.config.mpi_trace:
            return
        task = pctx.task
        task.charge(self.spec.vt_msg_event_cost)
        self._account_records(task, 1)
        buf = self._buffers.get(task)
        if buf is None:
            buf = self.buffer_for(task, pctx.thread_id)
        buf.message(kind, peer, tag, size, task.now)

    def log_collective(self, pctx: "ProgramContext", op: str, comm_size: int, t_start: float) -> None:
        if not self.initialized or not self.config.mpi_trace:
            return
        task = pctx.task
        task.charge(self.spec.vt_msg_event_cost)
        self._account_records(task, 1)
        buf = self._buffers.get(task)
        if buf is None:
            buf = self.buffer_for(task, pctx.thread_id)
        buf.collective(op, comm_size, t_start, task.now)

    def log_marker(self, task: Task, name: str, t_start: float, t_end: Optional[float] = None) -> None:
        buf = self._buffers.get(task)
        if buf is None:
            buf = self.buffer_for(task)
        buf.marker(name, t_start, t_end)

    # -- statistics --------------------------------------------------------------------

    def stats_table(self) -> List[Tuple[str, int, float]]:
        """(name, count, inclusive_time) rows, sorted by time descending."""
        rows = [
            (self.registry.name_of(fid), st.count, st.inclusive_time)
            for fid, st in self.stats.items()
        ]
        rows.sort(key=lambda r: (-r[2], r[0]))
        return rows

    def stats_payload_bytes(self) -> int:
        """Wire/disk size of a statistics snapshot.

        A fixed per-process header block (call-stack summaries, message
        matrices) plus one row per function with counts/time histograms.
        """
        return 24_576 + 96 * max(1, len(self.stats))

    def charge_stats_generation(self, task: Task) -> None:
        """CPU cost of aggregating the statistics snapshot."""
        task.charge(self.spec.stats_per_func_cost * max(1, len(self.stats)))

    # -- finalisation -------------------------------------------------------------------

    def flush_to(self, trace: TraceFile) -> None:
        """Dump buffers and the name table into the postmortem trace file.

        Each thread's suspension intervals are written as "suspended"
        markers so the timeline view can show (and the profile view can
        exclude) the regions of inactivity dynamic instrumentation
        causes (Sections 4.2 and 5.1).
        """
        for fid, name in self.registry.items():
            trace.register_function(fid, name)
        for task, buf in self._buffers.items():
            for start, end in task.suspensions:
                buf.marker("suspended", start, end)
                # Trace only mid-run suspensions (patch windows): stops
                # that ended before VT_init are spawn/instrument setup,
                # which the paper's reported time already excludes.
                if self._trace.enabled and (
                    self._init_time is None or end > self._init_time
                ):
                    self._trace.complete(
                        self.process_index, buf.thread,
                        "suspended", "suspended",
                        max(start, self._init_time or start), end,
                    )
        for buf in self._buffers.values():
            trace.add_buffer(buf)
        if self._obs.enabled:
            # Per-rank trace-volume observability.  The analytic raw
            # size is an O(1) memoized count; the VGVZ compact size is
            # a full codec pass over the buffer, so it stays behind the
            # explicit ``set_compact_accounting`` knob to keep plain
            # obs-enabled runs at dict-op cost (the engine benchmark
            # cell runs under a live registry and gates this).
            for buf in self._buffers.values():
                self._obs.inc("vt.trace_raw_bytes", buf.raw_bytes)
                if _COMPACT_ACCOUNTING:
                    self._obs.inc("vt.trace_compact_bytes", buf.compact_bytes)

    # -- runtime-registry entry points (for snippets that call by name) -------------------

    def _rt_funcdef(self, pctx: "ProgramContext", name: str) -> int:
        return self.funcdef(pctx.task, name)

    def _rt_begin(self, pctx: "ProgramContext", name: str) -> None:
        self.probe_begin(pctx, self.image.func(name))

    def _rt_end(self, pctx: "ProgramContext", name: str) -> None:
        self.probe_end(pctx, self.image.func(name))

    def __repr__(self) -> str:
        return (
            f"<VTProcessState p{self.process_index} init={self.initialized} "
            f"off={len(self._off)} epoch={self.epoch}>"
        )
