#!/usr/bin/env python
"""Quickstart: dynamically instrument a running MPI application.

Builds a small MPI program (4 ranks), spawns it *suspended* under the
dynprof tool, inserts Vampirtrace entry/exit probes into the two solver
functions at run time (the binary carries no static instrumentation at
all), runs it, and prints the VGV-style timeline and profile.

Run:  python examples/quickstart.py
"""

from repro.analysis import (
    ProfileView,
    Timeline,
    render_profile,
    render_timeline,
    render_trace_report,
    save_timeline_html,
)
from repro.cluster import Cluster, POWER3_SP
from repro.dynprof import DynProf
from repro.jobs import MpiJob
from repro.program import ExecutableImage
from repro.simt import Environment


def build_app() -> ExecutableImage:
    """A toy 'solver': exchange halos, relax, reduce a residual."""
    exe = ExecutableImage("quickapp")

    def relax(pctx):
        yield from pctx.compute(0.25)

    def exchange(pctx):
        comm = pctx.mpi.comm
        peer = comm.rank ^ 1  # pair up ranks 0-1, 2-3, ...
        if peer < comm.size:
            got = yield from comm.sendrecv(comm.rank, dest=peer, source=peer)
            assert got == peer
        pctx.charge(0.01)

    def residual(pctx):
        total = yield from pctx.mpi.comm.allreduce(1.0)
        return total

    exe.define("relax", body=relax)
    exe.define("exchange", body=exchange)
    exe.define("residual", body=residual)
    return exe


def program(pctx):
    yield from pctx.call("MPI_Init")
    for _step in range(6):
        yield from pctx.call("exchange")
        yield from pctx.call("relax")
        yield from pctx.call("residual")
    yield from pctx.call("MPI_Finalize")
    return pctx.now


def main() -> None:
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=42)
    job = MpiJob(env, cluster, build_app(), 4, program, start_suspended=True)

    # The dynprof session, scripted exactly like the paper's Table 1
    # command language (insert is queued until after MPI_Init - the tool
    # handles the Figure 6 bootstrap automatically).
    tool = DynProf(env, cluster, job)
    session = tool.run_script("""
        insert relax residual
        start
        quit
    """)
    env.run(until=session)
    env.run(until=job.completion())
    env.run()

    print(f"== dynprof output\n" + "\n".join(f"  {line}" for line in tool.output))
    print(f"\n== tool timefile\n{tool.timefile.render()}")

    timeline = Timeline(job.trace)
    print("== timeline (VGV-style)")
    print(render_timeline(timeline, width=90))
    print("== profile")
    print(render_profile(ProfileView(job.trace)))
    print(render_trace_report(job.trace, wall_time=env.now))
    save_timeline_html(timeline, "quickstart_timeline.html",
                       title="quickapp under dynprof")
    print("wrote quickstart_timeline.html (open in a browser for the SVG view)")
    # 'exchange' was never instrumented: it must not appear.
    assert "exchange" not in {p.name for p in ProfileView(job.trace).table()}
    print("OK: only the dynamically instrumented functions were traced.")


if __name__ == "__main__":
    main()
