#!/usr/bin/env python
"""Ephemeral instrumentation: sampling-guided snapshot probes.

The hybrid described in the paper's background section (Traub et al.):
a cheap statistical sampler finds where the time goes, then detailed
instrumentation is dynamically activated for *those* functions only,
for a bounded snapshot window.

Here the Smg98 multigrid kernel runs on 8 ranks with **no** static
instrumentation.  The profiler samples for a few seconds, ranks the 199
functions, snapshots the top three, and the resulting trace is a few
kilobytes instead of Full instrumentation's hundreds of megabytes.
"""

from repro.analysis import ProfileView, render_profile
from repro.apps import SMG98
from repro.cluster import Cluster, POWER3_SP
from repro.dynprof import DynProf, EphemeralProfiler
from repro.jobs import MpiJob
from repro.simt import Environment

N_RANKS = 8
SCALE = 0.5


def main() -> None:
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=33)
    exe = SMG98.build_exe(False)
    job = MpiJob(env, cluster, exe, N_RANKS,
                 SMG98.make_program(N_RANKS, SCALE), start_suspended=True)
    tool = DynProf(env, cluster, job)
    profiler = EphemeralProfiler(tool)

    def session():
        yield from tool._spawn()
        from repro.dynprof.commands import parse_command
        yield from tool.execute(parse_command("start"))
        yield tool.env.timeout(2.0)  # let the solver settle
        report, targets = yield from profiler.run(
            sample_duration=4.0, snapshot_window=5.0, top_k=3,
        )
        yield from tool.execute(parse_command("quit"))
        return report, targets

    proc = tool.task.start(session())
    report, targets = env.run(until=proc)
    env.run(until=job.completion())
    env.run()

    print(f"sampling: {report.samples_taken} samples over {report.duration:.0f}s "
          f"across {N_RANKS} ranks\n")
    print("top of the sampled ranking:")
    for name, share in report.ranked()[:6]:
        print(f"  {share * 100:5.1f}%  {name}")
    print(f"\nsnapshot targets: {', '.join(targets)}")

    pv = ProfileView(job.trace)
    print("\ndetailed profile from the snapshot window:")
    print(render_profile(pv, top=6))
    traced = {p.name for p in pv.table()}
    assert traced and traced <= set(targets), "only the targets were probed"
    print(f"trace size: {job.trace.size_bytes / 1024:.1f} KB "
          f"({job.trace.raw_record_count:,} records) — complete profiling "
          f"of this run writes ~{2 * 6_000_000 * SCALE * N_RANKS * 24 / 1e6:.0f} MB.")


if __name__ == "__main__":
    main()
