#!/usr/bin/env python
"""Policy comparison on Smg98 — the paper's headline result in miniature.

Runs the Smg98 multigrid kernel at 16 processors under all five Table 3
instrumentation policies and prints the Figure 7(a)-style comparison:
Full melts down (probe cost + trace I/O), Full-Off and Subset pay the
residual per-call lookup on 199 statically instrumented functions, and
Dynamic — probes patched in at run time, only where it matters — runs
at the speed of the uninstrumented binary.

Run:  python examples/policy_comparison.py  [scale]
"""

import sys

from repro.apps import SMG98
from repro.dynprof import POLICIES, policy_description, run_policy


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    n_cpus = 16
    print(f"Smg98 at {n_cpus} CPUs, workload scale {scale}\n")
    print(f"{'policy':<10s} {'time (s)':>10s} {'vs None':>8s} {'trace':>12s}  description")
    print("-" * 100)

    results = {}
    for policy in POLICIES:
        results[policy] = run_policy(SMG98, policy, n_cpus, scale=scale, seed=3)

    baseline = results["None"].time
    for policy in POLICIES:
        r = results[policy]
        mb = r.trace_bytes / 1e6
        print(
            f"{policy:<10s} {r.time:>10.2f} {r.time / baseline:>7.2f}x "
            f"{mb:>10.1f}MB  {policy_description(policy)}"
        )

    dyn = results["Dynamic"]
    print(
        f"\ndynprof needed {dyn.instrument_time:.1f}s to create + instrument "
        f"the {n_cpus}-rank job\n(excluded from the times above; the target "
        f"is suspended while probes go in)."
    )
    full, none = results["Full"], results["None"]
    print(
        f"\nThe point of the paper: Full profiling costs "
        f"{full.time / none.time:.1f}x and writes {full.trace_bytes / 1e6:.0f} MB "
        f"of trace;\ndynamic instrumentation of the 62 solver functions costs "
        f"{dyn.time / none.time:.2f}x and writes {dyn.trace_bytes / 1e3:.0f} KB."
    )


if __name__ == "__main__":
    main()
