#!/usr/bin/env python
"""Ephemeral instrumentation: a temporary measurement window.

The paper's scripting idiom (Section 3.3): "a wait that is placed
between an insert and remove can be used to temporarily monitor a
particular function or functions".  This example runs the Sweep3d
kernel under dynprof, opens a 12-second probe window on the ``sweep``
wavefront function mid-run, closes it again, and shows that:

* trace records exist only inside the window;
* the two stop-patch-continue operations appear on the timeline as the
  suspension inactivity the paper describes;
* the §5.1-style analysis excludes those suspensions from the profile.
"""

from repro.analysis import ProfileView, Timeline, render_profile, render_timeline
from repro.apps import SWEEP3D
from repro.cluster import Cluster, POWER3_SP
from repro.dynprof import DynProf
from repro.jobs import MpiJob
from repro.simt import Environment


def main() -> None:
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=21)
    n_ranks = 4
    exe = SWEEP3D.build_exe(False)
    job = MpiJob(env, cluster, exe, n_ranks,
                 SWEEP3D.make_program(n_ranks, 0.5), start_suspended=True)

    tool = DynProf(env, cluster, job)
    # The paper's idiom, verbatim: insert ... wait ... remove.
    session = tool.run_script("""
        start
        wait 20         # let the sweep get going untraced
        insert sweep    # open the measurement window
        wait 12
        remove sweep    # close it
        quit
    """)
    env.run(until=session)
    env.run(until=job.completion())
    env.run()

    window = [p for p in tool.timefile.phases if p.name == "instrument"]
    print(f"probe window opened at t={window[0].start:.1f}s "
          f"(install took {window[0].elapsed:.2f}s)\n")

    timeline = Timeline(job.trace)
    print(render_timeline(timeline, width=100))

    record_times = [
        rec.time for _p, _t, rec in job.trace.all_records()
        if hasattr(rec, "fid")
    ]
    print(f"subroutine records: {len(record_times):,}, all inside "
          f"[{min(record_times):.1f}s, {max(record_times):.1f}s]")

    inactivity = timeline.total_inactivity()
    print(f"total suspension across ranks: {inactivity:.2f}s "
          f"(spawn-suspended startup + two mid-run stop-patch-continue)")
    assert inactivity > 0, "mid-run patching must show as inactivity"

    print("\nprofile with suspension periods excluded (Section 5.1):")
    print(render_profile(ProfileView(job.trace, exclude_inactivity=True), top=5))


if __name__ == "__main__":
    main()
