#!/usr/bin/env python
"""The Section 5.1 hybrid: dynamic insertion at confsync safe points.

The paper's conclusion proposes combining the two techniques: let the
application call ``VT_confsync`` at safe points, set the breakpoint at
run time, and insert dynamic probes while the application is halted
there — the DPCL suspend skew is then absorbed by confsync's own
barrier instead of unbalancing the ranks.

This example runs the same 8-rank application twice and compares:

* **stop-anywhere**: the basic dynprof mid-run insert (suspend lands
  wherever the asynchronous daemon messages catch each rank);
* **safe-point**: `DynProf.patch_at_safe_point` (the hybrid).

and prints the post-patch per-rank imbalance of both.
"""

from repro.cluster import Cluster, POWER3_SP
from repro.dynprof import DynProf
from repro.jobs import MpiJob
from repro.program import ExecutableImage
from repro.simt import Environment
from repro.vt import vt_confsync

N_RANKS = 8
ITERATIONS = 30


def build_app():
    exe = ExecutableImage("hybrid")

    def work(pctx):
        yield from pctx.compute(1.0)

    exe.define("work", body=work)

    def program(pctx):
        yield from pctx.call("MPI_Init")
        comm = pctx.mpi.comm
        yield from comm.barrier()
        t0 = pctx.now
        for _ in range(ITERATIONS):
            yield from pctx.call("work")
            yield from vt_confsync(pctx)  # the user-inserted safe point
        elapsed = pctx.now - t0
        yield from pctx.call("MPI_Finalize")
        return elapsed

    return exe, program


def run_variant(mode: str, seed: int = 17):
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=seed)
    exe, program = build_app()
    job = MpiJob(env, cluster, exe, N_RANKS, program, start_suspended=True,
                 procs_per_node=1)  # one rank per node: per-node daemon skew shows
    tool = DynProf(env, cluster, job)

    def session():
        yield from tool._spawn()
        from repro.dynprof.commands import parse_command
        yield from tool.execute(parse_command("start"))
        yield tool.env.timeout(5.0)
        if mode == "safe-point":
            t_hit = yield from tool.patch_at_safe_point(insert=["work"])
        else:
            yield from tool._suspend_patch_resume(install=["work"], remove=())

    proc = tool.task.start(session())
    env.run(until=proc)
    env.run(until=job.completion())
    env.run()
    times = [p.value for p in job.procs]
    # Mid-run suspension intervals (skip the initial spawn suspension).
    stops = [t.suspensions[1:] for t in job.tasks]
    return times, tool, stops


def main() -> None:
    for mode in ("stop-anywhere", "safe-point"):
        times, tool, stops = run_variant(mode)
        starts = [iv[0] for rank in stops for iv in rank]
        stopped = sum(iv[1] - iv[0] for rank in stops for iv in rank)
        skew = (max(starts) - min(starts)) * 1000 if starts else 0.0
        print(f"{mode:>14s}: per-rank elapsed {min(times):.3f}..{max(times):.3f}s")
        print(f"{'':>14s}  mid-run stops: {sum(map(len, stops))} intervals, "
              f"{stopped * 1000:.1f} ms total inactivity, "
              f"stop-time skew across ranks {skew:.1f} ms")
        phases = [p.name for p in tool.timefile.phases]
        if "safe-point-wait" in phases:
            wait = tool.timefile.elapsed("safe-point-wait")
            patch = tool.timefile.elapsed("safe-point-patch")
            print(f"{'':>14s}  waited {wait:.2f}s for the safe point, "
                  f"patched in {patch:.3f}s")
    print("\nBoth variants instrument the same function.  Stop-anywhere")
    print("catches each rank wherever the skewed daemon messages land;")
    print("the safe-point variant folds the patch into a synchronisation")
    print("the application was doing anyway (the Section 5.1 proposal),")
    print("so its stops are shorter and its skew bounded by the collective.")


if __name__ == "__main__":
    main()
