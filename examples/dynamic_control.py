#!/usr/bin/env python
"""Dynamic control of instrumentation (Figure 2 / Section 5).

A fully statically instrumented MPI application calls
``configuration_sync`` (VT_confsync) at a safe point every iteration.
A monitoring tool has a breakpoint on ``configuration_break``: at the
first safe point the "user" (simulated think time: 2 s) deactivates
everything except the two solver functions through the configuration
file.

Watch the per-iteration trace growth collapse once the narrow
configuration is in: reconfiguration itself costs milliseconds
(Figure 8) — the human at the GUI is the critical path.

Run:  python examples/dynamic_control.py
"""

from repro.cluster import Cluster, POWER3_SP
from repro.dynprof import DynamicControlMonitor
from repro.jobs import MpiJob
from repro.program import ExecutableImage
from repro.simt import Environment
from repro.vt import VTConfig, vt_confsync

N_RANKS = 8
ITERATIONS = 9


def build_app() -> ExecutableImage:
    exe = ExecutableImage("controlled")

    def solve(pctx):
        yield from pctx.call_batch("util_index", 20_000, 1e-6)
        yield from pctx.compute(0.05)

    def assemble(pctx):
        yield from pctx.call_batch("util_copy", 30_000, 1e-6)
        yield from pctx.compute(0.02)

    exe.define("solve", body=solve)
    exe.define("assemble", body=assemble)
    exe.define("util_index")
    exe.define("util_copy")
    exe.instrument_statically()  # the Full build
    return exe


def program(pctx):
    yield from pctx.call("MPI_Init")
    vt = pctx.image.vt
    growth = []
    for _it in range(ITERATIONS):
        before = sum(b.raw_record_count for b in vt.buffers)
        yield from pctx.call("assemble")
        yield from pctx.call("solve")
        growth.append(sum(b.raw_record_count for b in vt.buffers) - before)
        # The safe point: no messages in flight here.
        yield from vt_confsync(pctx)
    yield from pctx.call("MPI_Finalize")
    return growth


def main() -> None:
    env = Environment()
    cluster = Cluster(env, POWER3_SP, seed=11)
    job = MpiJob(env, cluster, build_app(), N_RANKS, program)

    monitor = DynamicControlMonitor(job)
    monitor.set_breakpoint()
    narrow = VTConfig.subset(["solve", "assemble"])  # drop the util noise
    # Queue the "user edits": applied at the 1st and 4th breakpoints the
    # pending queue reaches (epochs are per confsync call).
    monitor.queue_config_change(narrow, hold_time=2.0)

    job.start()
    env.run(until=job.completion())
    env.run()

    growth = job.procs[0].value
    print("per-iteration trace-record growth on rank 0:")
    for i, g in enumerate(growth):
        marker = "  <- full instrumentation" if i == 0 else ""
        print(f"  iteration {i}: {g:>8,} new records{marker}")
    print()
    print(f"breakpoint visits: {len(monitor.visits)}")
    applied = [v for v in monitor.visits if v.applied is not None]
    print(f"configuration changes applied: {len(applied)} "
          f"(user hold time {sum(v.hold_time for v in applied):.1f}s)")
    assert growth[0] > 50_000, "full instrumentation should trace the utils"
    assert min(growth[2:]) < growth[0] / 100, (
        "after the narrow config, per-iteration trace growth must collapse"
    )
    print("\nOK: dynamic control collapsed the trace volume at a safe point,")
    print("without restarting or re-patching the application.")


if __name__ == "__main__":
    main()
